file(REMOVE_RECURSE
  "CMakeFiles/fig07_object_cdf.dir/fig07_object_cdf.cc.o"
  "CMakeFiles/fig07_object_cdf.dir/fig07_object_cdf.cc.o.d"
  "fig07_object_cdf"
  "fig07_object_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_object_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
