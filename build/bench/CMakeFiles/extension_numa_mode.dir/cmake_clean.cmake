file(REMOVE_RECURSE
  "CMakeFiles/extension_numa_mode.dir/extension_numa_mode.cc.o"
  "CMakeFiles/extension_numa_mode.dir/extension_numa_mode.cc.o.d"
  "extension_numa_mode"
  "extension_numa_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_numa_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
