# Empty compiler generated dependencies file for extension_numa_mode.
# This may be replaced when dependencies are built.
