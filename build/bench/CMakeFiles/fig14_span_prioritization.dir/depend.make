# Empty dependencies file for fig14_span_prioritization.
# This may be replaced when dependencies are built.
