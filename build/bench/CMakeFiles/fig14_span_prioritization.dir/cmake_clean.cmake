file(REMOVE_RECURSE
  "CMakeFiles/fig14_span_prioritization.dir/fig14_span_prioritization.cc.o"
  "CMakeFiles/fig14_span_prioritization.dir/fig14_span_prioritization.cc.o.d"
  "fig14_span_prioritization"
  "fig14_span_prioritization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_span_prioritization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
