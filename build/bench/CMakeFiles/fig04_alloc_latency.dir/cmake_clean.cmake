file(REMOVE_RECURSE
  "CMakeFiles/fig04_alloc_latency.dir/fig04_alloc_latency.cc.o"
  "CMakeFiles/fig04_alloc_latency.dir/fig04_alloc_latency.cc.o.d"
  "fig04_alloc_latency"
  "fig04_alloc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_alloc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
