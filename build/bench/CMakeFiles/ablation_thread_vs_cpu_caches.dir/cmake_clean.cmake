file(REMOVE_RECURSE
  "CMakeFiles/ablation_thread_vs_cpu_caches.dir/ablation_thread_vs_cpu_caches.cc.o"
  "CMakeFiles/ablation_thread_vs_cpu_caches.dir/ablation_thread_vs_cpu_caches.cc.o.d"
  "ablation_thread_vs_cpu_caches"
  "ablation_thread_vs_cpu_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thread_vs_cpu_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
