# Empty dependencies file for ablation_thread_vs_cpu_caches.
# This may be replaced when dependencies are built.
