file(REMOVE_RECURSE
  "CMakeFiles/huge_region_test.dir/tcmalloc/huge_region_test.cc.o"
  "CMakeFiles/huge_region_test.dir/tcmalloc/huge_region_test.cc.o.d"
  "huge_region_test"
  "huge_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
