# Empty compiler generated dependencies file for huge_region_test.
# This may be replaced when dependencies are built.
