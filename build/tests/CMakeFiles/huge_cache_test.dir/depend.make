# Empty dependencies file for huge_cache_test.
# This may be replaced when dependencies are built.
