file(REMOVE_RECURSE
  "CMakeFiles/huge_cache_test.dir/tcmalloc/huge_cache_test.cc.o"
  "CMakeFiles/huge_cache_test.dir/tcmalloc/huge_cache_test.cc.o.d"
  "huge_cache_test"
  "huge_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
