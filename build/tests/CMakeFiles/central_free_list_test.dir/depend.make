# Empty dependencies file for central_free_list_test.
# This may be replaced when dependencies are built.
