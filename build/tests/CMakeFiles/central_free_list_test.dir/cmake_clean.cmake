file(REMOVE_RECURSE
  "CMakeFiles/central_free_list_test.dir/tcmalloc/central_free_list_test.cc.o"
  "CMakeFiles/central_free_list_test.dir/tcmalloc/central_free_list_test.cc.o.d"
  "central_free_list_test"
  "central_free_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_free_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
