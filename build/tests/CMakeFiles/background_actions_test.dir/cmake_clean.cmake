file(REMOVE_RECURSE
  "CMakeFiles/background_actions_test.dir/tcmalloc/background_actions_test.cc.o"
  "CMakeFiles/background_actions_test.dir/tcmalloc/background_actions_test.cc.o.d"
  "background_actions_test"
  "background_actions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_actions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
