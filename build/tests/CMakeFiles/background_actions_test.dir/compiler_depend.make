# Empty compiler generated dependencies file for background_actions_test.
# This may be replaced when dependencies are built.
