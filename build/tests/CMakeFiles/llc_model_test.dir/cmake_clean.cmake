file(REMOVE_RECURSE
  "CMakeFiles/llc_model_test.dir/hw/llc_model_test.cc.o"
  "CMakeFiles/llc_model_test.dir/hw/llc_model_test.cc.o.d"
  "llc_model_test"
  "llc_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llc_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
