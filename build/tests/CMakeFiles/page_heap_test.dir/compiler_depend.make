# Empty compiler generated dependencies file for page_heap_test.
# This may be replaced when dependencies are built.
