file(REMOVE_RECURSE
  "CMakeFiles/page_heap_test.dir/tcmalloc/page_heap_test.cc.o"
  "CMakeFiles/page_heap_test.dir/tcmalloc/page_heap_test.cc.o.d"
  "page_heap_test"
  "page_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
