file(REMOVE_RECURSE
  "CMakeFiles/system_alloc_test.dir/tcmalloc/system_alloc_test.cc.o"
  "CMakeFiles/system_alloc_test.dir/tcmalloc/system_alloc_test.cc.o.d"
  "system_alloc_test"
  "system_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
