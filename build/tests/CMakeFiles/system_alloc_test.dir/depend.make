# Empty dependencies file for system_alloc_test.
# This may be replaced when dependencies are built.
