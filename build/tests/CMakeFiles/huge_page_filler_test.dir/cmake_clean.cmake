file(REMOVE_RECURSE
  "CMakeFiles/huge_page_filler_test.dir/tcmalloc/huge_page_filler_test.cc.o"
  "CMakeFiles/huge_page_filler_test.dir/tcmalloc/huge_page_filler_test.cc.o.d"
  "huge_page_filler_test"
  "huge_page_filler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_page_filler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
