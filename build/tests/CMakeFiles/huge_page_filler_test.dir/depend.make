# Empty dependencies file for huge_page_filler_test.
# This may be replaced when dependencies are built.
