file(REMOVE_RECURSE
  "CMakeFiles/size_classes_test.dir/tcmalloc/size_classes_test.cc.o"
  "CMakeFiles/size_classes_test.dir/tcmalloc/size_classes_test.cc.o.d"
  "size_classes_test"
  "size_classes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
