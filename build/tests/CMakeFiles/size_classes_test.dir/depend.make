# Empty dependencies file for size_classes_test.
# This may be replaced when dependencies are built.
