file(REMOVE_RECURSE
  "CMakeFiles/per_cpu_cache_test.dir/tcmalloc/per_cpu_cache_test.cc.o"
  "CMakeFiles/per_cpu_cache_test.dir/tcmalloc/per_cpu_cache_test.cc.o.d"
  "per_cpu_cache_test"
  "per_cpu_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_cpu_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
