# Empty compiler generated dependencies file for pagemap_test.
# This may be replaced when dependencies are built.
