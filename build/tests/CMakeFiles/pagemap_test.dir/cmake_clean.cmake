file(REMOVE_RECURSE
  "CMakeFiles/pagemap_test.dir/tcmalloc/pagemap_test.cc.o"
  "CMakeFiles/pagemap_test.dir/tcmalloc/pagemap_test.cc.o.d"
  "pagemap_test"
  "pagemap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
