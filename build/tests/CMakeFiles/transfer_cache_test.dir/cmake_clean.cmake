file(REMOVE_RECURSE
  "CMakeFiles/transfer_cache_test.dir/tcmalloc/transfer_cache_test.cc.o"
  "CMakeFiles/transfer_cache_test.dir/tcmalloc/transfer_cache_test.cc.o.d"
  "transfer_cache_test"
  "transfer_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
