file(REMOVE_RECURSE
  "libwsc_tcmalloc.a"
)
