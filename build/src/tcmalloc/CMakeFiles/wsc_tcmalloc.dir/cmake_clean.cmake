file(REMOVE_RECURSE
  "CMakeFiles/wsc_tcmalloc.dir/allocator.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/allocator.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/central_free_list.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/central_free_list.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/huge_cache.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/huge_cache.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/huge_page_filler.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/huge_page_filler.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/huge_region.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/huge_region.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/page_heap.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/page_heap.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/pagemap.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/pagemap.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/per_cpu_cache.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/per_cpu_cache.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/sampler.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/sampler.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/size_classes.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/size_classes.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/span.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/span.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/system_alloc.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/system_alloc.cc.o.d"
  "CMakeFiles/wsc_tcmalloc.dir/transfer_cache.cc.o"
  "CMakeFiles/wsc_tcmalloc.dir/transfer_cache.cc.o.d"
  "libwsc_tcmalloc.a"
  "libwsc_tcmalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_tcmalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
