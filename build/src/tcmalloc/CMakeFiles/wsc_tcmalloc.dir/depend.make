# Empty dependencies file for wsc_tcmalloc.
# This may be replaced when dependencies are built.
