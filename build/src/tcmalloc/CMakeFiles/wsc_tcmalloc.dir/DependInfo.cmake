
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcmalloc/allocator.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/allocator.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/allocator.cc.o.d"
  "/root/repo/src/tcmalloc/central_free_list.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/central_free_list.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/central_free_list.cc.o.d"
  "/root/repo/src/tcmalloc/huge_cache.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_cache.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_cache.cc.o.d"
  "/root/repo/src/tcmalloc/huge_page_filler.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_page_filler.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_page_filler.cc.o.d"
  "/root/repo/src/tcmalloc/huge_region.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_region.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/huge_region.cc.o.d"
  "/root/repo/src/tcmalloc/page_heap.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/page_heap.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/page_heap.cc.o.d"
  "/root/repo/src/tcmalloc/pagemap.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/pagemap.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/pagemap.cc.o.d"
  "/root/repo/src/tcmalloc/per_cpu_cache.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/per_cpu_cache.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/per_cpu_cache.cc.o.d"
  "/root/repo/src/tcmalloc/sampler.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/sampler.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/sampler.cc.o.d"
  "/root/repo/src/tcmalloc/size_classes.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/size_classes.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/size_classes.cc.o.d"
  "/root/repo/src/tcmalloc/span.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/span.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/span.cc.o.d"
  "/root/repo/src/tcmalloc/system_alloc.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/system_alloc.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/system_alloc.cc.o.d"
  "/root/repo/src/tcmalloc/transfer_cache.cc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/transfer_cache.cc.o" "gcc" "src/tcmalloc/CMakeFiles/wsc_tcmalloc.dir/transfer_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/wsc_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
