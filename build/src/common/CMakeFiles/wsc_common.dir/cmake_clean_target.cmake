file(REMOVE_RECURSE
  "libwsc_common.a"
)
