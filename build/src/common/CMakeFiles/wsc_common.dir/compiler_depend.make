# Empty compiler generated dependencies file for wsc_common.
# This may be replaced when dependencies are built.
