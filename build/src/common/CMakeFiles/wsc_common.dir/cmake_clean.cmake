file(REMOVE_RECURSE
  "CMakeFiles/wsc_common.dir/distribution.cc.o"
  "CMakeFiles/wsc_common.dir/distribution.cc.o.d"
  "CMakeFiles/wsc_common.dir/histogram.cc.o"
  "CMakeFiles/wsc_common.dir/histogram.cc.o.d"
  "CMakeFiles/wsc_common.dir/stats.cc.o"
  "CMakeFiles/wsc_common.dir/stats.cc.o.d"
  "CMakeFiles/wsc_common.dir/table.cc.o"
  "CMakeFiles/wsc_common.dir/table.cc.o.d"
  "libwsc_common.a"
  "libwsc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
