file(REMOVE_RECURSE
  "libwsc_hw.a"
)
