file(REMOVE_RECURSE
  "CMakeFiles/wsc_hw.dir/latency_model.cc.o"
  "CMakeFiles/wsc_hw.dir/latency_model.cc.o.d"
  "CMakeFiles/wsc_hw.dir/llc_model.cc.o"
  "CMakeFiles/wsc_hw.dir/llc_model.cc.o.d"
  "CMakeFiles/wsc_hw.dir/tlb.cc.o"
  "CMakeFiles/wsc_hw.dir/tlb.cc.o.d"
  "CMakeFiles/wsc_hw.dir/topology.cc.o"
  "CMakeFiles/wsc_hw.dir/topology.cc.o.d"
  "libwsc_hw.a"
  "libwsc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
