
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/latency_model.cc" "src/hw/CMakeFiles/wsc_hw.dir/latency_model.cc.o" "gcc" "src/hw/CMakeFiles/wsc_hw.dir/latency_model.cc.o.d"
  "/root/repo/src/hw/llc_model.cc" "src/hw/CMakeFiles/wsc_hw.dir/llc_model.cc.o" "gcc" "src/hw/CMakeFiles/wsc_hw.dir/llc_model.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/wsc_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/wsc_hw.dir/tlb.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/hw/CMakeFiles/wsc_hw.dir/topology.cc.o" "gcc" "src/hw/CMakeFiles/wsc_hw.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
