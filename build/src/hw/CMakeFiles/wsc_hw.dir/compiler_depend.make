# Empty compiler generated dependencies file for wsc_hw.
# This may be replaced when dependencies are built.
