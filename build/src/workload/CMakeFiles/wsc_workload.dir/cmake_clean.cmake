file(REMOVE_RECURSE
  "CMakeFiles/wsc_workload.dir/driver.cc.o"
  "CMakeFiles/wsc_workload.dir/driver.cc.o.d"
  "CMakeFiles/wsc_workload.dir/profiles.cc.o"
  "CMakeFiles/wsc_workload.dir/profiles.cc.o.d"
  "CMakeFiles/wsc_workload.dir/trace.cc.o"
  "CMakeFiles/wsc_workload.dir/trace.cc.o.d"
  "CMakeFiles/wsc_workload.dir/workload.cc.o"
  "CMakeFiles/wsc_workload.dir/workload.cc.o.d"
  "libwsc_workload.a"
  "libwsc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
