# Empty compiler generated dependencies file for wsc_workload.
# This may be replaced when dependencies are built.
