file(REMOVE_RECURSE
  "libwsc_workload.a"
)
