file(REMOVE_RECURSE
  "libwsc_fleet.a"
)
