# Empty compiler generated dependencies file for wsc_fleet.
# This may be replaced when dependencies are built.
