file(REMOVE_RECURSE
  "CMakeFiles/wsc_fleet.dir/experiment.cc.o"
  "CMakeFiles/wsc_fleet.dir/experiment.cc.o.d"
  "CMakeFiles/wsc_fleet.dir/fleet.cc.o"
  "CMakeFiles/wsc_fleet.dir/fleet.cc.o.d"
  "CMakeFiles/wsc_fleet.dir/machine.cc.o"
  "CMakeFiles/wsc_fleet.dir/machine.cc.o.d"
  "libwsc_fleet.a"
  "libwsc_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsc_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
