// Flagship time-series bench: a diurnal-pressure fleet observed
// longitudinally, aggregated by the streaming collector.
//
// The paper's methodology is continuous fleet telemetry (§2, Fig. 3): GWP
// samples every machine over days, and the analysis consumes per-interval
// series and fleet-wide distribution sketches, never raw per-machine data.
// This bench reproduces that pipeline end to end: machines run a diurnal
// pressure scenario (trough + antagonist spikes) with fault injection,
// Fleet::RunStreaming folds each machine into a StreamCollector the moment
// the fold cursor reaches it (memory O(metrics × intervals), independent
// of machine count — the CI stream-scaling smoke pins this via the
// peak_rss_kb/collector_peak_pending fields below), and the output is the
// per-interval fleet footprint/reclaim/failure series plus quantile-sketch
// percentiles (p50/p95/p99 footprint, alloc latency).
//
// Every BENCH_JSON timeseries/sketch line (and the --timeseries file) is
// byte-identical for any --threads value: tools/check_determinism.sh
// proves it on every CI run.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "fleet/stream_collector.h"

using namespace wsc;

namespace {

// VmHWM (peak resident set) of this process in KiB, or 0 when
// /proc/self/status is unavailable. Feeds the CI assertion that collector
// memory does not scale with --machines.
uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<uint64_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Prefixes every NDJSON line with "BENCH_JSON " for stdout emission.
void EmitNdjsonLines(const std::string& ndjson) {
  size_t start = 0;
  while (start < ndjson.size()) {
    size_t end = ndjson.find('\n', start);
    if (end == std::string::npos) end = ndjson.size();
    std::fputs("BENCH_JSON ", stdout);
    std::fwrite(ndjson.data() + start, 1, end - start, stdout);
    std::fputc('\n', stdout);
    start = end + 1;
  }
}

// Sum of every "failure/..." counter delta in one interval.
uint64_t FailureDelta(const telemetry::IntervalSeries::Interval& interval) {
  uint64_t total = 0;
  for (const auto& [key, delta] : interval.counters) {
    if (key.rfind("failure/", 0) == 0) total += delta;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner(
      "Fleet time series: diurnal pressure, streaming aggregation, sketches");
  bench::BenchTimer timer("fig_fleet_timeseries");

  // A day-in-the-life fleet compressed onto the logical clock: the diurnal
  // trough squeezes every machine mid-run, a quarter of machines catch an
  // antagonist spike, and fault injection adds the failure series.
  fleet::FleetConfig config;
  config.num_machines = 24;
  config.num_binaries = 60;
  config.min_colocated = 1;
  config.max_colocated = 3;
  config.duration = Seconds(10);
  config.max_requests_per_process = 15000;
  config.pressure.enabled = true;
  config.faults.enabled = true;
  config.faults.oom_kill_probability = 0.15;
  bench::ApplyBenchOverrides(config);
  // This bench *is* the time-series pipeline: capture even when no
  // --timeseries file was requested.
  config.timeseries_interval = bench::kBenchTimeseriesInterval;

  fleet::Fleet f(config, tcmalloc::AllocatorConfig(), /*seed=*/20240808);
  fleet::StreamCollector collector;
  f.RunStreaming(collector);
  timer.Report(collector.total_requests());
  bench::ReportTelemetry(timer.bench(), collector.telemetry());
  bench::ReportTimeSeries(timer.bench(), collector.timeseries());
  bench::ReportSelfProfile(collector.self_profile());

  const telemetry::IntervalSeries& series = collector.timeseries();
  EmitNdjsonLines(series.RenderNdjson(timer.bench(), /*arm=*/""));
  // Streaming bookkeeping for the CI scaling smoke. peak_rss_kb and
  // collector_peak_pending vary with the host and worker count — the
  // determinism byte-compare masks them.
  bench::BenchJson(timer.bench(), "stream")
      .Field("machines", static_cast<uint64_t>(collector.machines()))
      .Field("processes", static_cast<uint64_t>(collector.processes()))
      .Field("oom_kills", static_cast<uint64_t>(collector.oom_kills()))
      .Field("total_requests", collector.total_requests())
      .Field("failed_allocations", collector.total_failed_allocations())
      .Field("intervals", static_cast<uint64_t>(series.intervals().size()))
      .Field("collector_peak_pending",
             static_cast<uint64_t>(collector.peak_pending()))
      .Field("peak_rss_kb", PeakRssKb())
      .Emit();

  // Human view: the fleet footprint/reclaim/failure curve over logical
  // time (every interval on short CI runs, subsampled on long ones).
  TablePrinter table({"t (s)", "fleet heap (MiB)", "released (MiB)",
                      "reclaimed (MiB)", "reclaim runs", "failure events"});
  size_t stride = std::max<size_t>(1, series.intervals().size() / 16);
  for (size_t i = 0; i < series.intervals().size(); i += stride) {
    const auto& interval = series.intervals()[i];
    auto gauge = [&](const char* key) {
      auto it = interval.gauges.find(key);
      return it != interval.gauges.end() ? it->second : 0.0;
    };
    auto counter = [&](const char* key) -> uint64_t {
      auto it = interval.counters.find(key);
      return it != interval.counters.end() ? it->second : 0;
    };
    table.AddRow(
        {FormatDouble(interval.t_seconds, 1),
         FormatDouble(gauge("allocator/heap_bytes") / 1e6, 1),
         FormatDouble(gauge("allocator/released_bytes") / 1e6, 1),
         FormatDouble(
             static_cast<double>(counter("pressure/reclaimed_bytes")) / 1e6,
             1),
         std::to_string(counter("pressure/reclaim_runs")),
         std::to_string(FailureDelta(interval))});
  }
  table.Print();

  // Sketch percentiles: the Fig. 3-style fleet CDF summary, computed from
  // merged log-bucket sketches alone (no per-machine data retained).
  std::printf("\nfleet distribution sketches (merged, ~3%% relative error):\n");
  for (const auto& [name, sketch] : series.sketches()) {
    std::printf(
        "  %-28s n=%-8llu p50=%-12.0f p95=%-12.0f p99=%-12.0f max=%.0f\n",
        name.c_str(), static_cast<unsigned long long>(sketch.count()),
        sketch.Quantile(0.50), sketch.Quantile(0.95), sketch.Quantile(0.99),
        sketch.max());
  }
  std::printf(
      "\nstreaming: %d machines folded in index order, peak reorder buffer "
      "%zu machines (bounded by the window, not the fleet)\n",
      collector.machines(), collector.peak_pending());
  return 0;
}
