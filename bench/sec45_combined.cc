// Section 4.5 "Putting it all together": all four redesigns enabled —
// heterogeneous per-CPU caches (halved default), NUCA-aware transfer
// caches, span prioritization, and the lifetime-aware hugepage filler.
//
// Paper: +1.4% fleet throughput and -3.4% fleet memory; top-5 apps
// +0.7%..+8.1% throughput and -1.0%..-6.3% memory.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Section 4.5: all four optimizations combined");
  bench::BenchTimer timer("sec45_combined");

  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::AllOptimizations(control);

  fleet::AbResult ab =
      fleet::RunFleetAb(bench::ChipletFleet(), control, experiment, 4501);

  TablePrinter table({"application", "throughput", "memory", "CPI"});
  table.AddRow(bench::DeltaRow(ab.fleet));
  for (const auto& delta : ab.per_app) {
    if (delta.control.processes > 0) table.AddRow(bench::DeltaRow(delta));
  }
  table.Print();

  bench::PaperVsMeasured(
      "fleet throughput improvement", "+1.4%",
      FormatSignedPercent(ab.fleet.ThroughputChangePct()));
  bench::PaperVsMeasured("fleet memory reduction", "-3.4%",
                         FormatSignedPercent(ab.fleet.MemoryChangePct()));
  double best_tput = 0, best_mem = 0;
  for (const auto& delta : ab.per_app) {
    best_tput = std::max(best_tput, delta.ThroughputChangePct());
    best_mem = std::min(best_mem, delta.MemoryChangePct());
  }
  bench::PaperVsMeasured("best per-app throughput / memory",
                         "+8.1% / -6.3%",
                         FormatSignedPercent(best_tput) + " / " +
                             FormatSignedPercent(best_mem));
  std::printf(
      "\nshape check: the combined redesign raises throughput and lowers\n"
      "memory simultaneously — more productivity from fewer resources.\n");
  timer.Report(bench::TotalRequests(ab));
  bench::ReportTelemetry(timer.bench(), ab);
  return 0;
}
