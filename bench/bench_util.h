// Shared helpers for the bench binaries.
//
// Every bench regenerates one table or figure from the paper and prints
// the paper-reported value next to the measured value; EXPERIMENTS.md
// records the comparison. Machines run in parallel (fleet/parallel.h):
// pass --threads=N or set WSC_THREADS to control the worker count; results
// are bit-identical for every value. Fleet sizes are chosen so each bench
// finishes in about a minute on an 8-core machine.

#ifndef WSC_BENCH_BENCH_UTIL_H_
#define WSC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "fleet/experiment.h"
#include "fleet/parallel.h"
#include "workload/profiles.h"

namespace wsc::bench {

// Thread count requested via --threads=N (0 = auto: WSC_THREADS env var,
// else hardware concurrency).
inline int g_bench_threads = 0;

// Parses shared bench flags (currently --threads=N) from main's argv.
inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_bench_threads = std::atoi(argv[i] + 10);
    }
  }
}

// Standard fleet shape used by the fleet-wide benches. Sized for parallel
// execution: 12 machines keep 8 workers busy while staying close to the
// old 6-machine sequential wall clock on a single core.
inline fleet::FleetConfig DefaultFleet() {
  fleet::FleetConfig config;
  config.num_machines = 12;
  config.num_binaries = 40;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(18);
  config.max_requests_per_process = 110000;
  config.num_threads = g_bench_threads;
  return config;
}

// Chiplet-only fleet (for the NUCA experiments, which the paper runs on
// platforms with multiple LLC domains).
inline fleet::FleetConfig ChipletFleet() {
  fleet::FleetConfig config = DefaultFleet();
  config.platform_mix = {0.0, 0.0, 0.4, 0.35, 0.25};
  return config;
}

// Wall-clock throughput reporting: each bench prints one machine-readable
// BENCH_JSON line so the perf trajectory across PRs can be tracked by
// grepping bench output.
class BenchTimer {
 public:
  explicit BenchTimer(std::string bench)
      : bench_(std::move(bench)),
        start_(std::chrono::steady_clock::now()) {}

  // Reports simulated requests completed per real second. Call once, after
  // the simulation work is done.
  void Report(uint64_t sim_requests) const {
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    int threads = fleet::ResolveThreadCount(g_bench_threads);
    std::printf(
        "BENCH_JSON {\"bench\":\"%s\",\"threads\":%d,"
        "\"sim_requests\":%llu,\"wall_seconds\":%.3f,"
        "\"sim_requests_per_sec\":%.0f}\n",
        bench_.c_str(), threads,
        static_cast<unsigned long long>(sim_requests), wall,
        wall > 0 ? static_cast<double>(sim_requests) / wall : 0.0);
  }

 private:
  std::string bench_;
  std::chrono::steady_clock::time_point start_;
};

// Simulated requests in a set of fleet observations.
inline uint64_t TotalRequests(
    const std::vector<fleet::FleetObservation>& observations) {
  uint64_t total = 0;
  for (const fleet::FleetObservation& obs : observations) {
    total += obs.result.driver.requests;
  }
  return total;
}

// Simulated requests across both arms of an A/B result.
inline uint64_t TotalRequests(const fleet::AbResult& result) {
  return static_cast<uint64_t>(result.fleet.control.requests +
                               result.fleet.experiment.requests);
}

// Dedicated-server benchmark runs (Section 2.3): one workload per machine.
inline fleet::AbDelta BenchmarkAb(const workload::WorkloadSpec& spec,
                                  const tcmalloc::AllocatorConfig& control,
                                  const tcmalloc::AllocatorConfig& experiment,
                                  uint64_t seed) {
  return fleet::RunBenchmarkAb(
      spec, hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
      experiment, seed, Seconds(18), 150000);
}

// A packing-stress workload: load waves plus mixed lifetimes *within* size
// classes, so spans get pinned and drained — the regime where the central
// free list and hugepage filler policies matter.
inline workload::WorkloadSpec PackingStressSpec() {
  using namespace workload;
  WorkloadSpec spec;
  spec.name = "packing-stress";
  spec.behaviors = {
      MakeBehavior(0.55, SizeLognormal(64, 2.5),
                   LifetimeLognormal(Microseconds(300), 4.0)),
      MakeBehavior(0.05, SizeLognormal(256, 3.0),
                   LifetimeLognormal(Seconds(5), 4.0)),
      MakeBehavior(0.25, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Milliseconds(30), 4.0)),
      MakeBehavior(0.05, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Seconds(4), 3.0)),
      MakeBehavior(0.08, SizeLognormal(64 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(60), 3.0)),
      MakeBehavior(0.02, SizeLognormal(512 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(100), 2.0)),
  };
  spec.allocs_per_request = 10;
  spec.request_work_ns = 4000;
  spec.request_interval_ns = Milliseconds(1);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 10;
  spec.min_threads = 2;
  spec.max_threads = 24;
  spec.thread_period = Seconds(8);
  spec.startup_bytes = 50e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

// Renders one A/B delta row: app, throughput, memory, CPI changes.
inline std::vector<std::string> DeltaRow(const fleet::AbDelta& delta) {
  return {delta.label, FormatSignedPercent(delta.ThroughputChangePct()),
          FormatSignedPercent(delta.MemoryChangePct()),
          FormatSignedPercent(delta.CpiChangePct())};
}

// Prints the standard "paper vs measured" line.
inline void PaperVsMeasured(const char* what, const char* paper,
                            const std::string& measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", what, paper,
              measured.c_str());
}

}  // namespace wsc::bench

#endif  // WSC_BENCH_BENCH_UTIL_H_
