// Shared helpers for the bench binaries.
//
// Every bench regenerates one table or figure from the paper and prints
// the paper-reported value next to the measured value; EXPERIMENTS.md
// records the comparison. Machines run in parallel (fleet/parallel.h):
// pass --threads=N or set WSC_THREADS to control the worker count; results
// are bit-identical for every value. Fleet sizes are chosen so each bench
// finishes in about a minute on an 8-core machine.
//
// All machine-readable output flows through one schema-versioned
// serializer: each bench emits `BENCH_JSON {...}` lines (kind
// "throughput" and "telemetry") that tools/check_bench_json.py validates
// in CI, and honors --statsz=<path> to dump the merged metric registry
// (telemetry/statsz.h) of everything it simulated.
//
// Shared flags, parsed by ParseBenchFlags:
//   --threads=N       worker threads (0 = auto: WSC_THREADS, else cores)
//   --exec=MODE       "simulated" (default; deterministic discrete-event
//                     oracle) or "real-threads" (OS threads race one
//                     shared allocator; see tcmalloc/real_threads.h).
//                     Only benches that document it honor the flag.
//   --mt-threads=N    real-threads mode: top of the 1..N thread sweep
//                     (0 = auto: min(8, hardware concurrency))
//   --machines=N      override every fleet's machine count (CI smoke: 2)
//   --duration=S      override per-process simulated run length, seconds
//   --max-requests=N  override the per-process request bound
//   --statsz=PATH     write the merged telemetry dump; ".json" suffix
//                     selects the JSON form, "-" prints text to stdout
//   --trace=PATH      attach a flight recorder to every simulated process
//                     and write the merged Chrome-tracing JSON (load it in
//                     chrome://tracing or ui.perfetto.dev)
//   --profile=PATH    write the merged pprof-style heap profile; ".json"
//                     suffix selects the JSON form (tools/mallocz.py reads
//                     it), "-" prints text to stdout
//   --selfprof=PATH   attach the sampling self-profiler (profiler/
//                     self_profiler.h) to every simulated process — and to
//                     every OS thread in real-threads benches — and write
//                     the merged folded-stack profile; ".json" suffix
//                     selects the JSON form, "-" prints folded text to
//                     stdout. Feed the output to tools/flamegraph.py /
//                     tools/flamediff.py. Simulated-mode profiles are
//                     bit-identical for any --threads value.
//   --timeseries=PATH capture an interval time series from every
//                     simulated process (telemetry/timeseries.h: counter
//                     and histogram deltas plus gauge samples at 500 ms
//                     logical boundaries) and write the merged fleet
//                     series as NDJSON — one kind="timeseries" object per
//                     interval plus one kind="sketch" object per quantile
//                     sketch. Captures ride the logical clock, so the file
//                     is byte-identical for any --threads value
//                     (tools/check_determinism.sh proves it).
//   --out-dir=DIR     one flag for all sidecars: creates DIR and defaults
//                     --statsz=DIR/statsz.json, --trace=DIR/trace.json,
//                     --profile=DIR/heap_profile.json,
//                     --selfprof=DIR/selfprof.folded, and
//                     --timeseries=DIR/timeseries.ndjson. The fine-grained
//                     flags above stay as overrides: an explicit path
//                     wins over the --out-dir default. The preload
//                     harness (bench/preload) and the CI sidecar uploads
//                     follow the same DIR layout.
//
// Both ParseBenchFlags and StripBenchFlags know every flag above, so
// benches that hand the remaining argv to google-benchmark (e.g.
// fig04_alloc_latency) never leak a wsc flag into its parser.

#ifndef WSC_BENCH_BENCH_UTIL_H_
#define WSC_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <map>

#include "common/table.h"
#include "fleet/experiment.h"
#include "fleet/parallel.h"
#include "telemetry/timeseries.h"
#include "profiler/self_profiler.h"
#include "telemetry/statsz.h"
#include "trace/chrome_trace.h"
#include "trace/heap_profile.h"
#include "workload/profiles.h"

namespace wsc::bench {

// Version of the BENCH_JSON line format. v1 was the ad-hoc
// throughput-only line; v2 adds schema_version/kind and telemetry lines.
inline constexpr int kBenchJsonSchemaVersion = 2;

// Thread count requested via --threads=N (0 = auto: WSC_THREADS env var,
// else hardware concurrency).
inline int g_bench_threads = 0;
// Execution mode requested via --exec= ("" = the bench's own default,
// which is "simulated" everywhere except fig_mt_scaling). The simulated
// mode is the CI-gated oracle; "real-threads" trades determinism for real
// contention measurements.
inline std::string g_bench_exec;
// Real-threads sweep ceiling via --mt-threads=N (0 = auto).
inline int g_bench_mt_threads = 0;
// Fleet-shape overrides (0 = keep the bench's own defaults).
inline int g_bench_machines = 0;
inline double g_bench_duration_s = 0;
inline uint64_t g_bench_max_requests = 0;
// --out-dir sidecar directory ("" = disabled); see ApplyOutDirDefaults.
inline std::string g_out_dir;
// --statsz destination ("" = disabled).
inline std::string g_statsz_path;
// Merged telemetry across every ReportTelemetry call in this process;
// rewritten to g_statsz_path after each report so the file always holds
// the bench-wide aggregate.
inline telemetry::Snapshot g_statsz_accum;
// --trace / --profile destinations ("" = disabled).
inline std::string g_trace_path;
inline std::string g_profile_path;
// Flight-recorder ring capacity per process when --trace is on: 64 Ki
// 32-byte events (2 MiB) keeps the full event stream for the CI smoke
// shapes; longer runs wrap and report the dropped count in the trace
// metadata, exactly like a production flight recorder.
inline constexpr size_t kBenchTraceRingEvents = size_t{1} << 16;
// Trace and heap-profile aggregates across every report in this process,
// rewritten to their files after each report (same contract as --statsz).
// pids are remapped through g_trace_pid_base so successive fleets in one
// bench stay distinct rows in the trace viewer.
inline std::vector<trace::ProcessTrace> g_trace_accum;
inline int g_trace_pid_base = 0;
inline trace::HeapProfile g_profile_accum;
// --selfprof destination ("" = disabled) and its bench-wide aggregate,
// rewritten after each report (same contract as --statsz).
inline std::string g_selfprof_path;
inline prof::FoldedProfile g_selfprof_accum;
// --timeseries destination ("" = disabled) and its bench-wide aggregate,
// one merged series per arm label ("" = single-arm) so A/B benches keep
// their arms' series distinct in the NDJSON file. Rewritten after each
// report (same contract as --statsz).
inline std::string g_timeseries_path;
inline std::map<std::string, telemetry::IntervalSeries> g_timeseries_accum;
// Time-series capture cadence on the logical clock when --timeseries is
// on: matches the machine footprint-sampling period, so every footprint
// sample lands in exactly one interval.
inline constexpr SimTime kBenchTimeseriesInterval = Milliseconds(500);
// Self-profiler cadence: one sample per this many scope entries. Prime,
// so the sampler never phase-locks onto loops whose scope count per
// iteration divides the interval (the classic stratified-sampling bias).
inline constexpr uint64_t kBenchSelfProfInterval = 97;

// One row per shared flag: the "--name=" prefix and the setter that
// consumes its value. Parse and Strip both walk this table, so a flag
// added here is automatically recognized by both — there is no way for a
// new wsc flag to be parsed but leak through StripBenchFlags into another
// parser (google-benchmark rejects unknown flags fatally).
struct BenchFlag {
  const char* prefix;
  void (*apply)(const char* value);
};

inline constexpr BenchFlag kBenchFlags[] = {
    {"--threads=", [](const char* v) { g_bench_threads = std::atoi(v); }},
    {"--exec=", [](const char* v) { g_bench_exec = v; }},
    {"--mt-threads=",
     [](const char* v) { g_bench_mt_threads = std::atoi(v); }},
    {"--machines=", [](const char* v) { g_bench_machines = std::atoi(v); }},
    {"--duration=", [](const char* v) { g_bench_duration_s = std::atof(v); }},
    {"--max-requests=",
     [](const char* v) {
       g_bench_max_requests = static_cast<uint64_t>(std::atoll(v));
     }},
    {"--statsz=", [](const char* v) { g_statsz_path = v; }},
    {"--trace=", [](const char* v) { g_trace_path = v; }},
    {"--profile=", [](const char* v) { g_profile_path = v; }},
    {"--selfprof=", [](const char* v) { g_selfprof_path = v; }},
    {"--timeseries=", [](const char* v) { g_timeseries_path = v; }},
    {"--out-dir=", [](const char* v) { g_out_dir = v; }},
};

// Resolves --out-dir: creates the directory (mkdir -p semantics) and
// fills every sidecar path that was not explicitly set. Explicit
// fine-grained flags always win, whatever the flag order.
inline void ApplyOutDirDefaults() {
  if (g_out_dir.empty()) return;
  std::string path;
  for (size_t i = 0; i <= g_out_dir.size(); ++i) {
    if (i == g_out_dir.size() || g_out_dir[i] == '/') {
      if (!path.empty()) ::mkdir(path.c_str(), 0755);
    }
    if (i < g_out_dir.size()) path += g_out_dir[i];
  }
  auto fill = [](std::string& slot, const char* leaf) {
    if (slot.empty()) slot = g_out_dir + "/" + leaf;
  };
  fill(g_statsz_path, "statsz.json");
  fill(g_trace_path, "trace.json");
  fill(g_profile_path, "heap_profile.json");
  fill(g_selfprof_path, "selfprof.folded");
  fill(g_timeseries_path, "timeseries.ndjson");
}

// The flag row matching `arg`, or nullptr if it is not a wsc bench flag.
inline const BenchFlag* MatchBenchFlag(const char* arg) {
  for (const BenchFlag& flag : kBenchFlags) {
    if (std::strncmp(arg, flag.prefix, std::strlen(flag.prefix)) == 0) {
      return &flag;
    }
  }
  return nullptr;
}

// Parses shared bench flags from main's argv (unknown flags are left for
// the bench to interpret).
inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (const BenchFlag* flag = MatchBenchFlag(argv[i])) {
      flag->apply(argv[i] + std::strlen(flag->prefix));
    }
  }
  ApplyOutDirDefaults();
}

// Removes the wsc bench flags from argv (in place, updating argc) so the
// remainder can be handed to another flag parser (google-benchmark).
inline void StripBenchFlags(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (MatchBenchFlag(argv[i]) != nullptr) continue;
    argv[out++] = argv[i];
  }
  *argc = out;
}

// Simulated duration for a machine run: the bench's default unless
// --duration overrides it.
inline SimTime BenchDuration(SimTime default_duration) {
  if (g_bench_duration_s > 0) return Seconds(g_bench_duration_s);
  return default_duration;
}

// Per-process request bound: the bench's default unless --max-requests
// overrides it.
inline uint64_t BenchMaxRequests(uint64_t default_max) {
  return g_bench_max_requests > 0 ? g_bench_max_requests : default_max;
}

// Applies the shared command-line overrides to a hand-rolled fleet shape.
// Benches call this after filling in their own defaults, so CI can shrink
// any fleet to --machines=2 --max-requests=... without per-bench knobs.
inline void ApplyBenchOverrides(fleet::FleetConfig& config) {
  if (g_bench_machines > 0) config.num_machines = g_bench_machines;
  if (g_bench_duration_s > 0) config.duration = Seconds(g_bench_duration_s);
  if (g_bench_max_requests > 0) {
    config.max_requests_per_process = g_bench_max_requests;
  }
  config.num_threads = g_bench_threads;
  if (!g_trace_path.empty()) {
    config.trace_events_per_process = kBenchTraceRingEvents;
  }
  if (!g_selfprof_path.empty()) {
    config.selfprof_interval = kBenchSelfProfInterval;
  }
  if (!g_timeseries_path.empty()) {
    config.timeseries_interval = kBenchTimeseriesInterval;
  }
}

// Self-profiler cadence for benches that run Machines outside a
// FleetConfig (RunBenchmarkAb): nonzero only when --selfprof was given.
inline uint64_t BenchSelfProfInterval() {
  return g_selfprof_path.empty() ? 0 : kBenchSelfProfInterval;
}

// Standard fleet shape used by the fleet-wide benches. Sized for parallel
// execution: 12 machines keep 8 workers busy while staying close to the
// old 6-machine sequential wall clock on a single core.
inline fleet::FleetConfig DefaultFleet() {
  fleet::FleetConfig config;
  config.num_machines = 12;
  config.num_binaries = 40;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(18);
  config.max_requests_per_process = 110000;
  ApplyBenchOverrides(config);
  return config;
}

// Chiplet-only fleet (for the NUCA experiments, which the paper runs on
// platforms with multiple LLC domains).
inline fleet::FleetConfig ChipletFleet() {
  fleet::FleetConfig config = DefaultFleet();
  config.platform_mix = {0.0, 0.0, 0.4, 0.35, 0.25};
  return config;
}

// Writes `body` to `path` ("-" prints to stdout). Shared by the --trace
// and --profile rewrites.
inline void WriteBenchFile(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fputs(body.c_str(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

// Folds per-process traces and a merged heap profile into the bench-wide
// aggregates and rewrites the --trace/--profile files, so (like --statsz)
// the final write holds everything the bench simulated. Incoming traces
// are machine-index ordered and pids are remapped past everything already
// accumulated, so successive fleets stay distinct viewer rows and the
// files are bit-identical for any --threads value.
inline void ReportTraceAndProfile(std::vector<trace::ProcessTrace> traces,
                                  const trace::HeapProfile& profile) {
  if (!g_trace_path.empty() && !traces.empty()) {
    int next_base = g_trace_pid_base;
    for (trace::ProcessTrace& t : traces) {
      t.pid += g_trace_pid_base;
      next_base = std::max(next_base, t.pid + 1);
      g_trace_accum.push_back(std::move(t));
    }
    g_trace_pid_base = next_base;
    WriteBenchFile(g_trace_path, trace::RenderChromeTrace(g_trace_accum));
  }
  if (!g_profile_path.empty()) {
    g_profile_accum.MergeFrom(profile);
    bool json = g_profile_path.size() >= 5 &&
                g_profile_path.compare(g_profile_path.size() - 5, 5,
                                       ".json") == 0;
    WriteBenchFile(g_profile_path,
                   json ? trace::RenderHeapProfileJson(g_profile_accum)
                        : trace::RenderHeapProfileText(g_profile_accum));
  }
}

// Folds a folded self-profile into the bench-wide aggregate and rewrites
// the --selfprof file (same contract as --statsz: the final write holds
// everything the bench profiled). Folded counts merge commutatively, so
// the file is bit-identical for any --threads value in simulated mode.
inline void ReportSelfProfile(const prof::FoldedProfile& profile) {
  if (g_selfprof_path.empty() || profile.empty()) return;
  g_selfprof_accum.MergeFrom(profile);
  bool json = g_selfprof_path.size() >= 5 &&
              g_selfprof_path.compare(g_selfprof_path.size() - 5, 5,
                                      ".json") == 0;
  WriteBenchFile(g_selfprof_path,
                 json ? prof::RenderFoldedJson(g_selfprof_accum)
                      : prof::RenderFolded(g_selfprof_accum));
}

// Folds a merged interval series into the bench-wide aggregate for its
// arm ("" = single-arm) and rewrites the --timeseries NDJSON file: arms in
// map order, each as interval lines followed by sketch lines. Everything
// in the file derives from the logical clock and sorted maps, so it is
// byte-identical for any --threads value.
inline void ReportTimeSeries(const std::string& bench,
                             const telemetry::IntervalSeries& series,
                             const char* arm = nullptr) {
  if (g_timeseries_path.empty() || series.empty()) return;
  std::string label = arm != nullptr ? arm : "";
  g_timeseries_accum[label].MergeFrom(series);
  std::string body;
  for (const auto& [name, merged] : g_timeseries_accum) {
    body += merged.RenderNdjson(bench, name);
  }
  WriteBenchFile(g_timeseries_path, body);
}

// Trace/profile of a set of fleet observations.
inline void ReportTraceAndProfile(
    const std::vector<fleet::FleetObservation>& observations) {
  ReportSelfProfile(fleet::MergedSelfProfile(observations));
  if (g_trace_path.empty() && g_profile_path.empty()) return;
  ReportTraceAndProfile(fleet::MergedTrace(observations),
                        fleet::MergedHeapProfile(observations));
}

// Trace/profile of one machine run (pid = next free viewer row, tid =
// process index within the machine).
inline void ReportTraceAndProfile(
    const std::vector<fleet::ProcessResult>& results) {
  prof::FoldedProfile self_profile;
  for (const fleet::ProcessResult& r : results) {
    self_profile.MergeFrom(r.self_profile);
  }
  ReportSelfProfile(self_profile);
  if (g_trace_path.empty() && g_profile_path.empty()) return;
  std::vector<trace::ProcessTrace> traces;
  trace::HeapProfile profile;
  for (size_t i = 0; i < results.size(); ++i) {
    traces.push_back({0, static_cast<int>(i), results[i].trace});
    profile.MergeFrom(results[i].heap_profile);
  }
  ReportTraceAndProfile(std::move(traces), profile);
}

// Builder for one `BENCH_JSON {...}` line. Every bench emission goes
// through this class, so all lines share the v2 schema:
//   {"schema_version":2,"bench":...,"kind":...,"threads":...,<fields>}
class BenchJson {
 public:
  BenchJson(const std::string& bench, const char* kind) {
    out_ = "{\"schema_version\":";
    out_ += std::to_string(kBenchJsonSchemaVersion);
    out_ += ",\"bench\":\"";
    telemetry::AppendJsonEscaped(out_, bench);
    out_ += "\",\"kind\":\"";
    telemetry::AppendJsonEscaped(out_, kind);
    out_ += "\",\"threads\":";
    out_ += std::to_string(fleet::ResolveThreadCount(g_bench_threads));
  }

  BenchJson& Field(const char* name, double v) {
    AppendKey(name);
    out_ += telemetry::FormatJsonNumber(v);
    return *this;
  }
  BenchJson& Field(const char* name, uint64_t v) {
    AppendKey(name);
    out_ += std::to_string(v);
    return *this;
  }
  BenchJson& Field(const char* name, const std::string& v) {
    AppendKey(name);
    out_ += "\"";
    telemetry::AppendJsonEscaped(out_, v);
    out_ += "\"";
    return *this;
  }

  // Flat {"component/name": scalar, ...} object over a snapshot's
  // samples (histograms contribute their observation count).
  BenchJson& Metrics(const telemetry::Snapshot& snapshot) {
    AppendKey("metrics");
    out_ += "{";
    bool first = true;
    for (const telemetry::MetricSample& s : snapshot.samples) {
      if (!first) out_ += ",";
      first = false;
      out_ += "\"";
      telemetry::AppendJsonEscaped(out_, s.Key());
      out_ += "\":";
      out_ += telemetry::FormatJsonNumber(s.ScalarValue());
    }
    out_ += "}";
    return *this;
  }

  void Emit() const { std::printf("BENCH_JSON %s}\n", out_.c_str()); }

 private:
  void AppendKey(const char* name) {
    out_ += ",\"";
    out_ += name;
    out_ += "\":";
  }

  std::string out_;
};

// Emits one kind="telemetry" line for `snapshot` and folds it into the
// --statsz aggregate (rewriting the statsz file, so the final write holds
// everything the bench reported). `arm` labels A/B sides.
inline void ReportTelemetry(const std::string& bench,
                            const telemetry::Snapshot& snapshot,
                            const char* arm = nullptr) {
  BenchJson line(bench, "telemetry");
  if (arm != nullptr) line.Field("arm", std::string(arm));
  line.Field("schema_telemetry", static_cast<uint64_t>(
                                     snapshot.schema_version));
  line.Metrics(snapshot);
  line.Emit();
  g_statsz_accum.MergeFrom(snapshot);
  if (!g_statsz_path.empty()) {
    telemetry::WriteStatszFile(g_statsz_path, g_statsz_accum);
  }
}

// Telemetry of a set of fleet observations (merged in machine-index
// order).
inline void ReportTelemetry(
    const std::string& bench,
    const std::vector<fleet::FleetObservation>& observations,
    const char* arm = nullptr) {
  ReportTelemetry(bench, fleet::MergedTelemetry(observations), arm);
  ReportTimeSeries(bench, fleet::MergedTimeSeries(observations), arm);
  ReportTraceAndProfile(observations);
}

// Telemetry of one machine run (merged across its co-located processes).
inline void ReportTelemetry(const std::string& bench,
                            const std::vector<fleet::ProcessResult>& results,
                            const char* arm = nullptr) {
  telemetry::Snapshot merged;
  telemetry::IntervalSeries series;
  for (const fleet::ProcessResult& r : results) {
    merged.MergeFrom(r.telemetry);
    series.MergeFrom(r.timeseries);
  }
  ReportTelemetry(bench, merged, arm);
  ReportTimeSeries(bench, series, arm);
  ReportTraceAndProfile(results);
}

// Telemetry of both arms of an A/B delta (two lines).
inline void ReportTelemetry(const std::string& bench,
                            const fleet::AbDelta& delta) {
  ReportTelemetry(bench, delta.control_telemetry, "control");
  ReportTelemetry(bench, delta.experiment_telemetry, "experiment");
  ReportTimeSeries(bench, delta.control_timeseries, "control");
  ReportTimeSeries(bench, delta.experiment_timeseries, "experiment");
  // Both arms fold into one --selfprof file: the A/B pair ran the same
  // workload plan, so the merged profile is the bench's hot-path shape.
  ReportSelfProfile(delta.control_self_profile);
  ReportSelfProfile(delta.experiment_self_profile);
}

// Telemetry of a fleet A/B result's fleet-wide slice.
inline void ReportTelemetry(const std::string& bench,
                            const fleet::AbResult& result) {
  ReportTelemetry(bench, result.fleet);
}

// Wall-clock throughput reporting: each bench prints one machine-readable
// BENCH_JSON line so the perf trajectory across PRs can be tracked by
// grepping bench output.
class BenchTimer {
 public:
  explicit BenchTimer(std::string bench)
      : bench_(std::move(bench)),
        start_(std::chrono::steady_clock::now()) {}

  const std::string& bench() const { return bench_; }

  // Reports simulated requests completed per real second. Call once, after
  // the simulation work is done.
  void Report(uint64_t sim_requests) const {
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    BenchJson(bench_, "throughput")
        .Field("sim_requests", sim_requests)
        .Field("wall_seconds", wall)
        .Field("sim_requests_per_sec",
               wall > 0 ? static_cast<double>(sim_requests) / wall : 0.0)
        .Emit();
  }

 private:
  std::string bench_;
  std::chrono::steady_clock::time_point start_;
};

// Simulated requests in a set of fleet observations.
inline uint64_t TotalRequests(
    const std::vector<fleet::FleetObservation>& observations) {
  uint64_t total = 0;
  for (const fleet::FleetObservation& obs : observations) {
    total += obs.result.driver.requests;
  }
  return total;
}

// Simulated requests across both arms of an A/B result.
inline uint64_t TotalRequests(const fleet::AbResult& result) {
  return static_cast<uint64_t>(result.fleet.control.requests +
                               result.fleet.experiment.requests);
}

// Dedicated-server benchmark runs (Section 2.3): one workload per machine.
inline fleet::AbDelta BenchmarkAb(const workload::WorkloadSpec& spec,
                                  const tcmalloc::AllocatorConfig& control,
                                  const tcmalloc::AllocatorConfig& experiment,
                                  uint64_t seed) {
  return fleet::RunBenchmarkAb(
      spec, hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
      experiment, seed, BenchDuration(Seconds(18)),
      BenchMaxRequests(150000));
}

// A packing-stress workload: load waves plus mixed lifetimes *within* size
// classes, so spans get pinned and drained — the regime where the central
// free list and hugepage filler policies matter.
inline workload::WorkloadSpec PackingStressSpec() {
  using namespace workload;
  WorkloadSpec spec;
  spec.name = "packing-stress";
  spec.behaviors = {
      MakeBehavior(0.55, SizeLognormal(64, 2.5),
                   LifetimeLognormal(Microseconds(300), 4.0)),
      MakeBehavior(0.05, SizeLognormal(256, 3.0),
                   LifetimeLognormal(Seconds(5), 4.0)),
      MakeBehavior(0.25, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Milliseconds(30), 4.0)),
      MakeBehavior(0.05, SizeLognormal(4096, 2.0),
                   LifetimeLognormal(Seconds(4), 3.0)),
      MakeBehavior(0.08, SizeLognormal(64 * 1024, 2.0),
                   LifetimeLognormal(Milliseconds(60), 3.0)),
      MakeBehavior(0.02, SizeLognormal(512 * 1024, 1.5),
                   LifetimeLognormal(Milliseconds(100), 2.0)),
  };
  spec.allocs_per_request = 10;
  spec.request_work_ns = 4000;
  spec.request_interval_ns = Milliseconds(1);
  spec.touches_per_alloc = 2;
  spec.reuse_touches_per_request = 10;
  spec.min_threads = 2;
  spec.max_threads = 24;
  spec.thread_period = Seconds(8);
  spec.startup_bytes = 50e6;
  spec.startup_object_size = SizeLognormal(256, 2.0);
  return spec;
}

// Renders one A/B delta row: app, throughput, memory, CPI changes.
inline std::vector<std::string> DeltaRow(const fleet::AbDelta& delta) {
  return {delta.label, FormatSignedPercent(delta.ThroughputChangePct()),
          FormatSignedPercent(delta.MemoryChangePct()),
          FormatSignedPercent(delta.CpiChangePct())};
}

// Prints the standard "paper vs measured" line.
inline void PaperVsMeasured(const char* what, const char* paper,
                            const std::string& measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", what, paper,
              measured.c_str());
}

}  // namespace wsc::bench

#endif  // WSC_BENCH_BENCH_UTIL_H_
