// Pressure experiment: a fleet A/B run under injected memory-pressure
// events (diurnal trough + per-machine antagonist spikes).
//
// Both arms run with the same hard memory limit per process. The control
// arm is baseline TCMalloc; the experiment arm enables the paper's four
// redesigns. Under pressure the soft limit drops to a fraction of each
// process's peak footprint and the background reclaimer (background.h)
// must degrade the cache hierarchy gracefully: the optimized arm should
// absorb every pressure event with zero hard-limit allocation failures
// while reporting the bytes it reclaimed through the "pressure" telemetry
// component.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

namespace {

double PressureMetric(const telemetry::Snapshot& snapshot,
                      const char* name) {
  const telemetry::MetricSample* sample = snapshot.Find("pressure", name);
  return sample != nullptr ? sample->ScalarValue() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Pressure: fleet A/B under memory-pressure events");
  bench::BenchTimer timer("fig_pressure_reclaim");

  fleet::FleetConfig fleet_config = bench::DefaultFleet();
  fleet_config.pressure.enabled = true;

  // Per-process hard ceiling, generous enough that a well-behaved
  // allocator never trips it (the biggest production profiles carry a few
  // GiB of live state); pressure comes from the soft-limit events, and the
  // graceful-degradation claim is that the reclaim cascade absorbs them
  // without ever backing into the hard limit.
  const size_t kHardLimit = size_t{8} << 30;

  tcmalloc::AllocatorConfig control =
      tcmalloc::AllocatorConfig::Builder()
          .WithHardMemoryLimit(kHardLimit)
          .Build();
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder()
          .WithAllOptimizations()
          .WithHardMemoryLimit(kHardLimit)
          .Build();

  fleet::AbResult result =
      fleet::RunFleetAb(fleet_config, control, experiment, /*seed=*/4242);

  TablePrinter table({"arm", "throughput", "avg memory", "reclaimed",
                      "soft-limit hits", "hard failures"});
  struct Arm {
    const char* name;
    const fleet::MetricSet* metrics;
    const telemetry::Snapshot* telemetry;
  };
  Arm arms[] = {
      {"control (baseline)", &result.fleet.control,
       &result.fleet.control_telemetry},
      {"experiment (optimized)", &result.fleet.experiment,
       &result.fleet.experiment_telemetry},
  };
  for (const Arm& arm : arms) {
    table.AddRow(
        {arm.name, FormatDouble(arm.metrics->Throughput(), 0),
         FormatBytes(arm.metrics->memory_bytes /
                     std::max(arm.metrics->processes, 1)),
         FormatBytes(PressureMetric(*arm.telemetry, "reclaimed_bytes")),
         FormatDouble(PressureMetric(*arm.telemetry, "soft_limit_hits"), 0),
         FormatDouble(arm.metrics->failed_allocations, 0)});
  }
  table.Print();

  double exp_reclaimed =
      PressureMetric(result.fleet.experiment_telemetry, "reclaimed_bytes");
  double exp_failures = result.fleet.experiment.failed_allocations;
  std::printf(
      "\noptimized arm: %s reclaimed under pressure, %.0f hard-limit "
      "failures%s\n",
      FormatBytes(exp_reclaimed).c_str(), exp_failures,
      exp_failures == 0 ? " (graceful degradation held)" : "");
  std::printf(
      "throughput delta %+.2f%%, memory delta %+.2f%% (optimized vs "
      "baseline, both under identical pressure)\n",
      result.fleet.ThroughputChangePct(), result.fleet.MemoryChangePct());

  bench::PaperVsMeasured("pressure response", "give memory back (§4.4)",
                         "see reclaimed column");
  timer.Report(bench::TotalRequests(result));
  bench::ReportTelemetry(timer.bench(), result);
  return 0;
}
