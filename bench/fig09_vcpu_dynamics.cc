// Fig. 9: (a) the dynamic thread count of a WSC service over time and
// (b) the per-vCPU miss-ratio skew of the statically sized per-CPU caches.
//
// Paper: worker-thread counts fluctuate constantly with load; with dense
// vCPU ids, vCPU 0 sees the most cache misses and higher-indexed vCPUs see
// progressively fewer — the statically sized high-index caches are used
// inefficiently, motivating the heterogeneous cache design.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"
#include "tcmalloc/malloc_extension.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 9a: dynamic thread count of a middle-tier service");
  bench::BenchTimer timer("fig09_vcpu_dynamics");

  workload::WorkloadSpec spec = workload::SpannerProfile();
  tcmalloc::AllocatorConfig config = tcmalloc::AllocatorConfig::Builder()
                                         .WithVcpus(spec.max_threads)
                                         .Build();
  tcmalloc::Allocator alloc(config);
  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenD));
  std::vector<int> cpus;
  for (int c = 0; c < topo.num_cpus(); ++c) cpus.push_back(c);
  workload::Driver driver(spec, &alloc, &topo, cpus, nullptr, nullptr, 909);

  std::vector<std::pair<double, double>> thread_series;
  SimTime next_sample = 0;
  const SimTime duration = bench::BenchDuration(Seconds(40));
  const uint64_t max_requests = bench::BenchMaxRequests(400000);
  while (driver.now() < duration &&
         driver.metrics().requests < max_requests) {
    driver.Step();
    if (driver.now() >= next_sample) {
      thread_series.push_back(
          {driver.now() / 1e9, static_cast<double>(driver.active_threads())});
      next_sample = driver.now() + Milliseconds(500);
    }
  }
  PrintSeries("active worker threads over time (s, threads)", thread_series,
              1);
  double min_threads = 1e9, max_threads = 0;
  for (auto& [t, n] : thread_series) {
    min_threads = std::min(min_threads, n);
    max_threads = std::max(max_threads, n);
  }
  bench::PaperVsMeasured("thread count fluctuates", "constantly",
                         FormatDouble(min_threads, 0) + " .. " +
                             FormatDouble(max_threads, 0) + " threads");

  PrintBanner("Fig. 9b: per-vCPU cache miss-ratio skew");
  uint64_t total_misses = 0;
  std::vector<uint64_t> misses(alloc.cpu_caches().num_vcpus());
  for (int v = 0; v < alloc.cpu_caches().num_vcpus(); ++v) {
    auto stats = alloc.cpu_caches().GetVcpuStats(v);
    misses[v] = stats.underflows + stats.overflows;
    total_misses += misses[v];
  }
  TablePrinter table({"vCPU id", "misses", "share of all misses %"});
  for (int v = 0; v < alloc.cpu_caches().num_vcpus(); ++v) {
    table.AddRow({std::to_string(v), std::to_string(misses[v]),
                  FormatDouble(total_misses > 0
                                   ? 100.0 * misses[v] / total_misses
                                   : 0.0,
                               2)});
  }
  table.Print();

  double low_share = 0, high_share = 0;
  int n = alloc.cpu_caches().num_vcpus();
  for (int v = 0; v < n / 2; ++v) low_share += misses[v];
  for (int v = n / 2; v < n; ++v) high_share += misses[v];
  bench::PaperVsMeasured(
      "miss share, low-half vs high-half vCPU ids",
      "vCPU 0 highest, decaying",
      FormatDouble(100.0 * low_share / std::max<uint64_t>(total_misses, 1),
                   1) +
          "% vs " +
          FormatDouble(100.0 * high_share / std::max<uint64_t>(total_misses, 1),
                       1) +
          "%");
  std::printf(
      "\nshape check: low-indexed vCPU caches absorb most misses; the\n"
      "statically sized high-indexed caches are used inefficiently.\n");
  timer.Report(driver.metrics().requests);
  bench::ReportTelemetry(timer.bench(), tcmalloc::MallocExtension(&alloc).GetTelemetrySnapshot());
  return 0;
}
