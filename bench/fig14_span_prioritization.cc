// Fig. 14: memory reduction from span prioritization in the central free
// list (L = 8 occupancy-indexed lists).
//
// Paper: fleet -1.41% memory; monarch -2.76%, other top-5 apps
// -0.34%..-2.54%; dedicated benchmarks -0.61%..-1.36%; application
// productivity unchanged.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 14: memory reduction with span prioritization");
  bench::BenchTimer timer("fig14_span_prioritization");

  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithSpanPrioritization().Build();

  fleet::AbResult ab =
      fleet::RunFleetAb(bench::DefaultFleet(), control, experiment, 1401);

  TablePrinter table(
      {"workload", "memory reduction %", "throughput", "paper %"});
  auto add = [&table](const fleet::AbDelta& delta, const char* paper) {
    table.AddRow({delta.label, FormatDouble(-delta.MemoryChangePct(), 2),
                  FormatSignedPercent(delta.ThroughputChangePct()), paper});
  };
  add(ab.fleet, "1.41");
  const char* paper_top5[] = {"0.34-2.54", "2.76", "0.34-2.54", "0.34-2.54",
                              "0.34-2.54"};
  for (size_t i = 0; i < ab.per_app.size(); ++i) {
    if (ab.per_app[i].control.processes > 0) {
      add(ab.per_app[i], paper_top5[i]);
    }
  }
  auto benchmarks = workload::BenchmarkProfiles();
  for (size_t i = 0; i < benchmarks.size(); ++i) {
    fleet::AbDelta delta =
        bench::BenchmarkAb(benchmarks[i], control, experiment, 1410 + i);
    add(delta, "0.61-1.36");
  }
  // A dedicated packing-stress run: deep load cycles with pinned spans,
  // the regime where span placement decisions matter most. Our synthetic
  // fleet profiles drain more cleanly than production traffic (their
  // baseline LIFO relist order already lands on recently-pinned spans), so
  // the fleet rows above understate the effect; this row shows it.
  fleet::AbDelta stress = fleet::RunBenchmarkAb(
      bench::PackingStressSpec(),
      hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
      experiment, 1450, bench::BenchDuration(Seconds(30)),
      bench::BenchMaxRequests(400000), bench::BenchSelfProfInterval());
  add(stress, "(stress)");
  table.Print();

  bench::PaperVsMeasured("fleet memory reduction", "1.41%",
                         FormatDouble(-ab.fleet.MemoryChangePct(), 2) + "%");
  bench::PaperVsMeasured(
      "productivity", "unchanged",
      FormatSignedPercent(ab.fleet.ThroughputChangePct()));
  std::printf(
      "\nshape check: packing allocations onto the fullest spans lets\n"
      "nearly-empty spans drain and return to the page heap.\n");
  timer.Report(bench::TotalRequests(ab));
  bench::ReportTelemetry(timer.bench(), ab);
  return 0;
}
