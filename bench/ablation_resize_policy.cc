// Ablation: heterogeneous per-CPU cache resize cadence and the number of
// top-miss caches grown per step.
//
// Paper (Section 4.1): a background thread resizes every 5 seconds,
// growing the top five per-CPU caches by misses and stealing capacity
// round-robin from the rest.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Ablation: per-CPU cache resize interval and grow count");
  bench::BenchTimer timer("ablation_resize_policy");
  uint64_t sim_requests = 0;

  tcmalloc::AllocatorConfig control;  // static caches
  workload::WorkloadSpec spec = workload::SpannerProfile();

  TablePrinter table({"resize interval", "grow candidates",
                      "memory vs static", "throughput vs static"});
  struct Setting {
    SimTime interval;
    int candidates;
    const char* label;
  };
  const Setting settings[] = {
      {Seconds(1), 5, "1 s"},   {Seconds(5), 1, "5 s"},
      {Seconds(5), 5, "5 s"},   {Seconds(5), 12, "5 s"},
      {Seconds(30), 5, "30 s"},
  };
  for (const Setting& s : settings) {
    tcmalloc::AllocatorConfig experiment =
        tcmalloc::AllocatorConfig::Builder()
            .WithDynamicCpuCaches()
            .WithCpuCacheBytes(control.per_cpu_cache_bytes / 2)
            .WithCpuCacheResizeInterval(s.interval)
            .WithCpuCacheGrowCandidates(s.candidates)
            .Build();
    fleet::AbDelta delta =
        bench::BenchmarkAb(spec, control, experiment, 8300);
    sim_requests += static_cast<uint64_t>(delta.control.requests +
                                          delta.experiment.requests);
    bench::ReportTelemetry(std::string("ablation_resize_policy/") + s.label +
                               "-grow" + std::to_string(s.candidates),
                           delta);
    table.AddRow({s.label, std::to_string(s.candidates),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.ThroughputChangePct())});
  }
  table.Print();
  std::printf(
      "\nexpected: the paper's 5 s / top-5 setting balances adaptation\n"
      "speed against resize churn; much slower intervals adapt too late\n"
      "to load spikes.\n");
  timer.Report(sim_requests);
  return 0;
}
