// Ablation: number of occupancy-indexed lists L in the central free list.
//
// Paper (Section 4.3): "Our experiments show that L = 8 lists are
// sufficient to differentiate spans." This ablation sweeps L and reports
// the memory footprint relative to the single-list baseline.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Ablation: central-free-list occupancy lists (L)");
  bench::BenchTimer timer("ablation_cfl_lists");
  uint64_t sim_requests = 0;

  tcmalloc::AllocatorConfig control;  // L = 1 (no prioritization)
  workload::WorkloadSpec spec = bench::PackingStressSpec();

  // Packing effects need several load cycles to develop, so these runs are
  // longer than the standard benchmark A/B.
  TablePrinter table({"L", "memory vs baseline", "throughput vs baseline"});
  for (int lists : {2, 8, 32}) {
    tcmalloc::AllocatorConfig experiment = tcmalloc::AllocatorConfig::Builder()
                                               .WithSpanPrioritization()
                                               .WithCflNumLists(lists)
                                               .Build();
    fleet::AbDelta delta = fleet::RunBenchmarkAb(
        spec, hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
        experiment, 8100, bench::BenchDuration(Seconds(30)),
        bench::BenchMaxRequests(400000), bench::BenchSelfProfInterval());
    sim_requests += static_cast<uint64_t>(delta.control.requests +
                                          delta.experiment.requests);
    bench::ReportTelemetry("ablation_cfl_lists/L" + std::to_string(lists),
                           delta);
    table.AddRow({std::to_string(lists),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.ThroughputChangePct())});
  }
  table.Print();
  std::printf(
      "\nexpected: gains saturate around L = 8 — more lists only split\n"
      "high-occupancy spans the allocator already treats identically.\n");
  timer.Report(sim_requests);
  return 0;
}
