// Ablation: number of occupancy-indexed lists L in the central free list.
//
// Paper (Section 4.3): "Our experiments show that L = 8 lists are
// sufficient to differentiate spans." This ablation sweeps L and reports
// the memory footprint relative to the single-list baseline.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main() {
  PrintBanner("Ablation: central-free-list occupancy lists (L)");

  tcmalloc::AllocatorConfig control;  // L = 1 (no prioritization)
  workload::WorkloadSpec spec = bench::PackingStressSpec();

  // Packing effects need several load cycles to develop, so these runs are
  // longer than the standard benchmark A/B.
  TablePrinter table({"L", "memory vs baseline", "throughput vs baseline"});
  for (int lists : {2, 8, 32}) {
    tcmalloc::AllocatorConfig experiment;
    experiment.span_prioritization = true;
    experiment.cfl_num_lists = lists;
    fleet::AbDelta delta = fleet::RunBenchmarkAb(
        spec, hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), control,
        experiment, 8100, Seconds(30), 400000);
    table.AddRow({std::to_string(lists),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.ThroughputChangePct())});
  }
  table.Print();
  std::printf(
      "\nexpected: gains saturate around L = 8 — more lists only split\n"
      "high-occupancy spans the allocator already treats identically.\n");
  return 0;
}
