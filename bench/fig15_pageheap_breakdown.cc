// Fig. 15: in-use memory and fragmentation within the page heap, by
// component (hugepage filler / hugepage region / hugepage cache).
//
// Paper: the hugepage filler manages 83.6% of the page heap's in-use
// memory and accounts for 94.4% of its fragmentation.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/fleet.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 15: page-heap component breakdown");
  bench::BenchTimer timer("fig15_pageheap_breakdown");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  // Run the top-5 production workloads and aggregate their page heaps
  // (page-heap component stats need the live allocator, so this bench
  // runs machines directly rather than using fleet observations).
  tcmalloc::PageHeapStats total;
  uint64_t seed = 1510;
  for (const auto& spec : workload::TopFiveProfiles()) {
    fleet::Machine machine(
        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), {spec},
        tcmalloc::AllocatorConfig(), seed++);
    machine.Run(bench::BenchDuration(Seconds(16)),
                bench::BenchMaxRequests(80000));
    sim_requests += machine.results()[0].driver.requests;
    merged_telemetry.MergeFrom(machine.results()[0].telemetry);
    tcmalloc::PageHeapStats s = machine.allocator(0).page_heap_stats();
    total.filler_used += s.filler_used;
    total.filler_free += s.filler_free;
    total.region_used += s.region_used;
    total.region_free += s.region_free;
    total.cache_used += s.cache_used;
    total.cache_free += s.cache_free;
  }

  double in_use = static_cast<double>(total.TotalInUse());
  double frag = static_cast<double>(total.TotalFree());
  TablePrinter table({"component", "in-use %", "fragmentation %"});
  auto pct = [](double v, double t) {
    return t > 0 ? FormatDouble(100.0 * v / t, 1) : std::string("0");
  };
  table.AddRow({"HugeFiller", pct(total.filler_used, in_use),
                pct(total.filler_free, frag)});
  table.AddRow({"HugeRegion", pct(total.region_used, in_use),
                pct(total.region_free, frag)});
  table.AddRow({"HugeCache", pct(total.cache_used, in_use),
                pct(total.cache_free, frag)});
  table.Print();

  bench::PaperVsMeasured("HugeFiller share of in-use memory", "83.6%",
                         pct(total.filler_used, in_use) + "%");
  bench::PaperVsMeasured("HugeFiller share of page-heap fragmentation",
                         "94.4%", pct(total.filler_free, frag) + "%");
  std::printf(
      "\nshape check: the filler dominates both in-use memory and\n"
      "fragmentation — the right component to make lifetime-aware.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
