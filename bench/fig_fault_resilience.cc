// Fault-resilience experiment: a fleet A/B run under deterministic fault
// injection — denied mmaps, hugepage-backing scarcity, driver-injected
// heap bugs (double free / use after free / overrun), and one planned OOM
// kill-and-restart per afflicted machine.
//
// Both arms face bit-identical fault plans (paired seeds; fault points are
// call-indexed, so they are also identical for any --threads value). The
// control arm is baseline TCMalloc; the experiment arm enables the paper's
// four redesigns. Both run with GWP-ASan-style guarded sampling so the
// injected heap bugs are caught and attributed. The resilience claim: the
// fleet completes with zero crashes, every denied allocation is a counted
// failure with a graceful fallback, and the emergency reclaim cascade
// recovers allocations that initial growth denial would have failed.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

namespace {

double FailureMetric(const telemetry::Snapshot& snapshot, const char* name) {
  const telemetry::MetricSample* sample = snapshot.Find("failure", name);
  return sample != nullptr ? sample->ScalarValue() : 0.0;
}

double DetectedBugs(const telemetry::Snapshot& snapshot) {
  return FailureMetric(snapshot, "double_frees_detected") +
         FailureMetric(snapshot, "use_after_frees_detected") +
         FailureMetric(snapshot, "buffer_overruns_detected");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fault resilience: fleet A/B under deterministic faults");
  bench::BenchTimer timer("fig_fault_resilience");

  fleet::FleetConfig fleet_config = bench::DefaultFleet();
  fleet_config.faults.enabled = true;
  fleet_config.faults.mmap_windows = 2;
  fleet_config.faults.mmap_window_calls = 4;
  fleet_config.faults.mmap_call_horizon = 512;
  fleet_config.faults.huge_backing_windows = 2;
  fleet_config.faults.huge_backing_window_calls = 32;
  fleet_config.faults.huge_backing_call_horizon = 512;
  fleet_config.faults.double_free_probability = 0.01;
  fleet_config.faults.use_after_free_probability = 0.01;
  fleet_config.faults.overrun_probability = 0.01;
  fleet_config.faults.oom_kill_probability = 0.5;

  tcmalloc::AllocatorConfig control = tcmalloc::AllocatorConfig::Builder()
                                          .WithSampleIntervalBytes(256 * 1024)
                                          .WithGuardedSampling()
                                          .Build();
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder()
          .WithAllOptimizations()
          .WithSampleIntervalBytes(256 * 1024)
          .WithGuardedSampling()
          .Build();

  fleet::AbResult result =
      fleet::RunFleetAb(fleet_config, control, experiment, /*seed=*/4242);

  TablePrinter table({"arm", "throughput", "mmap denied", "thp denied",
                      "recovered", "bugs caught", "alloc failures"});
  struct Arm {
    const char* name;
    const fleet::MetricSet* metrics;
    const telemetry::Snapshot* telemetry;
  };
  Arm arms[] = {
      {"control (baseline)", &result.fleet.control,
       &result.fleet.control_telemetry},
      {"experiment (optimized)", &result.fleet.experiment,
       &result.fleet.experiment_telemetry},
  };
  for (const Arm& arm : arms) {
    table.AddRow(
        {arm.name, FormatDouble(arm.metrics->Throughput(), 0),
         FormatDouble(FailureMetric(*arm.telemetry, "mmap_denied"), 0),
         FormatDouble(FailureMetric(*arm.telemetry, "hugepage_backing_denied"),
                      0),
         FormatDouble(FailureMetric(*arm.telemetry, "recovered_allocations"),
                      0),
         FormatDouble(DetectedBugs(*arm.telemetry), 0),
         FormatDouble(FailureMetric(*arm.telemetry, "alloc_failures"), 0)});
  }
  table.Print();

  const telemetry::Snapshot& exp = result.fleet.experiment_telemetry;
  std::printf(
      "\nexperiment arm: %.0f denied mmaps, %.0f denied THP backings, "
      "%.0f emergency cascades, %.0f allocations recovered\n",
      FailureMetric(exp, "mmap_denied"),
      FailureMetric(exp, "hugepage_backing_denied"),
      FailureMetric(exp, "emergency_recoveries"),
      FailureMetric(exp, "recovered_allocations"));
  std::printf(
      "guarded sampling caught %.0f injected heap bugs (%.0f double frees, "
      "%.0f UAFs, %.0f overruns)\n",
      DetectedBugs(exp), FailureMetric(exp, "double_frees_detected"),
      FailureMetric(exp, "use_after_frees_detected"),
      FailureMetric(exp, "buffer_overruns_detected"));
  std::printf(
      "throughput delta %+.2f%%, memory delta %+.2f%% (optimized vs "
      "baseline, both under identical fault plans)\n",
      result.fleet.ThroughputChangePct(), result.fleet.MemoryChangePct());

  bench::PaperVsMeasured("fault handling", "degrade, don't crash (§2.1)",
                         "0 crashes, failures counted");
  timer.Report(bench::TotalRequests(result));
  bench::ReportTelemetry(timer.bench(), result);
  return 0;
}
