#!/usr/bin/env bash
# Head-to-head allocator comparison across LD_PRELOAD arms.
#
#   bench/preload/compare_allocators.sh [bench-binary] [bench flags...]
#
# Runs the SAME preload bench binary (default: build/bench/preload/
# bench_realistic) once per allocator arm:
#
#   system     bare glibc malloc (always runs)
#   wscmalloc  build/src/shim/libwscmalloc.so (always runs once built)
#   jemalloc   libjemalloc.so        — auto-detected, skipped if absent
#   tcmalloc   libtcmalloc.so        — auto-detected, skipped if absent
#   mimalloc   libmimalloc.so        — auto-detected, skipped if absent
#
# Third-party allocators are never a build dependency: the script probes
# ldconfig and common library directories at run time, and a missing .so
# produces a machine-readable skip marker instead of a failure:
#
#   BENCH_JSON {"schema_version":2,"bench":"preload_compare",
#               "kind":"skipped","arm":"jemalloc","reason":"..."}
#
# so downstream tooling (tools/check_bench_json.py) sees every arm
# accounted for — run or skipped — on every host. Present arms re-emit
# the bench's one-line JSON report tagged with the arm:
#
#   BENCH_JSON {"schema_version":2,"bench":"preload_compare",
#               "kind":"preload","arm":"tcmalloc","bench_binary":"...",
#               <the bench's own report fields>}
#
# See EXPERIMENTS.md ("Cross-allocator comparison") for the recipe.

set -u

BUILD="${BUILD:-build}"
BENCH="${1:-$BUILD/bench/preload/bench_realistic}"
shift 2>/dev/null || true

if [ ! -x "$BENCH" ]; then
  echo "compare_allocators: missing bench binary $BENCH (build first)" >&2
  exit 1
fi
BENCH_NAME="$(basename "$BENCH")"

# Locates one shared library by trying ldconfig's cache first, then the
# usual multiarch directories. Prints the path, or nothing.
find_lib() {
  local stem
  for stem in "$@"; do
    if command -v ldconfig >/dev/null 2>&1; then
      local hit
      hit="$(ldconfig -p 2>/dev/null | awk -v s="$stem" \
        '$1 ~ "^"s { print $NF; exit }')"
      if [ -n "${hit:-}" ] && [ -e "$hit" ]; then
        echo "$hit"
        return 0
      fi
    fi
    local dir
    for dir in /usr/lib/x86_64-linux-gnu /usr/lib/aarch64-linux-gnu \
               /usr/lib64 /usr/lib /usr/local/lib; do
      local f
      for f in "$dir/$stem" "$dir/$stem".*; do
        if [ -e "$f" ]; then
          echo "$f"
          return 0
        fi
      done
    done
  done
  return 1
}

emit_skip() {
  local arm="$1" reason="$2"
  printf 'BENCH_JSON {"schema_version":2,"bench":"preload_compare","kind":"skipped","arm":"%s","reason":"%s"}\n' \
    "$arm" "$reason"
}

# Runs one arm ($1=arm name, $2=preload path or "" for bare) and re-tags
# the bench's report line as a preload_compare BENCH_JSON line.
run_arm() {
  local arm="$1" preload="$2" out rc line
  shift 2
  if [ -n "$preload" ]; then
    out="$(LD_PRELOAD="$preload" "$BENCH" "$@" 2>/dev/null)"
  else
    out="$("$BENCH" "$@" 2>/dev/null)"
  fi
  rc=$?
  if [ $rc -ne 0 ]; then
    emit_skip "$arm" "bench exited $rc under this allocator"
    return 1
  fi
  # The preload benches print exactly one {"bench":...} report line; its
  # own "bench" key is dropped (bench_binary carries it) so the merged
  # line has no duplicate keys.
  line="$(printf '%s\n' "$out" | grep -m1 '^{')"
  if [ -z "$line" ]; then
    emit_skip "$arm" "no report line from bench"
    return 1
  fi
  inner="$(printf '%s' "${line#\{}" | sed 's/^"bench":"[^"]*",//')"
  printf 'BENCH_JSON {"schema_version":2,"bench":"preload_compare","kind":"preload","arm":"%s","bench_binary":"%s",%s\n' \
    "$arm" "$BENCH_NAME" "$inner"
}

shift_args=("$@")

# "system" failing means the bench itself is broken — hard failure.
# Preloaded arms failing degrade to skip markers (run_arm emits them).
if ! run_arm system "" "${shift_args[@]}"; then
  echo "compare_allocators: bench failed on glibc — broken bench" >&2
  exit 1
fi

WSC_SHIM="$BUILD/src/shim/libwscmalloc.so"
if [ -f "$WSC_SHIM" ]; then
  run_arm wscmalloc "$WSC_SHIM" "${shift_args[@]}" || true
else
  emit_skip wscmalloc "libwscmalloc.so not built"
fi

# Third-party arms: best-effort, never required. libtcmalloc_minimal is
# accepted for the tcmalloc arm — the malloc path is the same.
for arm in jemalloc tcmalloc mimalloc; do
  case "$arm" in
    jemalloc) lib="$(find_lib libjemalloc.so libjemalloc.so.2)" ;;
    tcmalloc) lib="$(find_lib libtcmalloc.so libtcmalloc_minimal.so)" ;;
    mimalloc) lib="$(find_lib libmimalloc.so libmimalloc.so.2)" ;;
  esac
  if [ -z "${lib:-}" ]; then
    emit_skip "$arm" "library not found on this host"
    continue
  fi
  run_arm "$arm" "$lib" "${shift_args[@]}" || true
done

exit 0
