// "Realistic" workload: phases of growth, steady-state churn, and decay,
// with the two-population lifetime mix the paper reports (most objects
// die young; a long-lived minority holds most of the bytes). Exercises
// realloc and aligned allocation alongside malloc/free so the full shim
// surface is on the hot path.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "preload_util.h"

namespace {

struct Obj {
  void* p = nullptr;
  size_t size = 0;
};

size_t PickSize(wsc_preload::Rng& rng) {
  const uint64_t u = rng.Next();
  return 24 + (u % 2048);  // 24 B .. ~2 KiB, unaligned sizes included
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsc_preload;
  PreloadFlags flags = ParsePreloadFlags(argc, argv);
  ShimApi shim = DiscoverShim();
  AppendShimStats(flags, "realistic", shim, "pre");

  Rng rng(flags.seed);
  std::vector<Obj> long_lived;   // grows through the run, freed at exit
  std::vector<Obj> short_lived(512);

  const uint64_t t0 = NowNanos();
  for (uint64_t op = 0; op < flags.ops; ++op) {
    const uint64_t r = rng.Next();
    const uint64_t action = r % 100;
    if (action < 70) {
      // Short-lived churn.
      Obj& o = short_lived[r >> 32 & 511];
      if (o.p != nullptr) std::free(o.p);
      o.size = PickSize(rng);
      o.p = std::malloc(o.size);
      if (o.p == nullptr) std::abort();
      std::memset(o.p, 1, o.size < 32 ? o.size : 32);
    } else if (action < 85) {
      // Grow a short-lived buffer in place (vector-append pattern).
      Obj& o = short_lived[r >> 32 & 511];
      if (o.p != nullptr) {
        o.size += o.size / 2 + 8;
        o.p = std::realloc(o.p, o.size);
        if (o.p == nullptr) std::abort();
      }
    } else if (action < 95) {
      // Long-lived allocation (arena/cache entry pattern).
      Obj o;
      o.size = PickSize(rng) * 4;
      o.p = std::malloc(o.size);
      if (o.p == nullptr) std::abort();
      std::memset(o.p, 2, o.size < 32 ? o.size : 32);
      long_lived.push_back(o);
    } else {
      // Aligned allocation (I/O buffer pattern).
      void* p = nullptr;
      if (posix_memalign(&p, 4096, 8192) != 0) std::abort();
      std::memset(p, 3, 64);
      std::free(p);
    }
  }
  const uint64_t t1 = NowNanos();
  const size_t rss_steady = ReadRssBytes();

  for (Obj& o : short_lived) std::free(o.p);
  for (Obj& o : long_lived) std::free(o.p);

  AppendShimStats(flags, "realistic", shim, "post");

  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"realistic\",\"allocator\":\"%s\",\"ops\":%llu,"
                "\"ns_per_op\":%.2f,\"long_lived\":%zu,\"rss_bytes\":%zu}",
                AllocatorName(shim),
                static_cast<unsigned long long>(flags.ops),
                static_cast<double>(t1 - t0) / static_cast<double>(flags.ops),
                long_lived.size(), rss_steady);
  EmitReport(flags, "realistic", line);
  return 0;
}
