// Shared harness for the LD_PRELOAD head-to-head benches.
//
// Unlike bench/bench_util.h, this header is deliberately self-contained:
// the preload benches must NOT link any wsc library, because the point is
// to run the *same binary* twice —
//
//   ./bench_mt --threads=8                       # glibc malloc
//   LD_PRELOAD=.../libwscmalloc.so ./bench_mt --threads=8
//
// — and attribute every difference to the interposed allocator. The only
// permitted dependencies are libc, libdl (to discover the wscmalloc_*
// introspection exports when the shim is preloaded) and pthreads.
//
// Flags (a subset of the bench_util.h conventions):
//   --threads=N     worker thread count (default 4)
//   --ops=N         operations per thread (default 1'000'000)
//   --seed=N        deterministic PRNG seed (default 1)
//   --out-dir=DIR   write DIR/<bench>.json (the harness report) and, when
//                   the shim is active, DIR/<bench>.stats.json with the
//                   pre/post wscmalloc_stats_json() snapshots. Same DIR
//                   convention as bench_util.h --out-dir.
//
// Every bench prints a one-line JSON report to stdout:
//   {"bench":"mt","allocator":"wscmalloc"|"system",...,"ns_per_op":...}
#ifndef WSC_BENCH_PRELOAD_PRELOAD_UTIL_H_
#define WSC_BENCH_PRELOAD_PRELOAD_UTIL_H_

#include <dlfcn.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

namespace wsc_preload {

// ---------------------------------------------------------------------------
// Shim discovery. All pointers are null when running on plain glibc.
// ---------------------------------------------------------------------------

struct ShimApi {
  int (*is_active)() = nullptr;
  const char* (*backend)() = nullptr;
  size_t (*release_memory)(size_t) = nullptr;
  size_t (*stats_json)(char*, size_t) = nullptr;

  bool active() const { return is_active != nullptr && is_active() != 0; }
};

inline ShimApi DiscoverShim() {
  ShimApi api;
  // RTLD_DEFAULT scans the global scope, so this finds the symbols iff
  // libwscmalloc.so was preloaded — no dlopen, no hard dependency.
  api.is_active = reinterpret_cast<int (*)()>(
      dlsym(RTLD_DEFAULT, "wscmalloc_is_active"));
  api.backend = reinterpret_cast<const char* (*)()>(
      dlsym(RTLD_DEFAULT, "wscmalloc_backend"));
  api.release_memory = reinterpret_cast<size_t (*)(size_t)>(
      dlsym(RTLD_DEFAULT, "wscmalloc_release_memory"));
  api.stats_json = reinterpret_cast<size_t (*)(char*, size_t)>(
      dlsym(RTLD_DEFAULT, "wscmalloc_stats_json"));
  return api;
}

inline const char* AllocatorName(const ShimApi& api) {
  return api.active() ? "wscmalloc" : "system";
}

// ---------------------------------------------------------------------------
// Flags.
// ---------------------------------------------------------------------------

struct PreloadFlags {
  int threads = 4;
  uint64_t ops = 1000000;
  uint64_t seed = 1;
  std::string out_dir;
};

inline PreloadFlags ParsePreloadFlags(int argc, char** argv) {
  PreloadFlags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0) {
      f.threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--ops=", 6) == 0) {
      f.ops = std::strtoull(a + 6, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      f.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--out-dir=", 10) == 0) {
      f.out_dir = a + 10;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  if (f.threads < 1) f.threads = 1;
  if (!f.out_dir.empty()) {
    // mkdir -p
    std::string path;
    for (size_t i = 0; i <= f.out_dir.size(); ++i) {
      if (i == f.out_dir.size() || f.out_dir[i] == '/') {
        if (!path.empty()) ::mkdir(path.c_str(), 0755);
      }
      if (i < f.out_dir.size()) path += f.out_dir[i];
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Timing, PRNG, RSS.
// ---------------------------------------------------------------------------

inline uint64_t NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// splitmix64 — tiny, seedable, and identical across both allocator runs.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// VmRSS in bytes from /proc/self/status; 0 if unreadable.
inline size_t ReadRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t rss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss_kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return rss_kb * 1024;
}

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

// Writes `json_line` to stdout and, with --out-dir, to DIR/<bench>.json.
// When the shim is active also captures wscmalloc_stats_json() into
// DIR/<bench>.stats.json tagged with `phase` ("pre"/"post") lines that
// accumulated during the run via AppendShimStats below.
inline void EmitReport(const PreloadFlags& flags, const char* bench,
                       const std::string& json_line) {
  std::fputs(json_line.c_str(), stdout);
  std::fputc('\n', stdout);
  if (flags.out_dir.empty()) return;
  const std::string path = flags.out_dir + "/" + bench + ".json";
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(json_line.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
}

// Appends one {"phase":...,<shim stats>} line to DIR/<bench>.stats.json.
// No-op on glibc or without --out-dir. CI diffs the pre/post snapshots to
// assert the allocation/free delta balances.
inline void AppendShimStats(const PreloadFlags& flags, const char* bench,
                            const ShimApi& api, const char* phase) {
  if (!api.active() || api.stats_json == nullptr || flags.out_dir.empty()) {
    return;
  }
  char buf[2048];
  const size_t n = api.stats_json(buf, sizeof(buf));
  if (n == 0 || n >= sizeof(buf)) return;
  const std::string path = flags.out_dir + "/" + bench + ".stats.json";
  if (FILE* f = std::fopen(path.c_str(), "a")) {
    std::fprintf(f, "{\"phase\":\"%s\",\"stats\":%s}\n", phase, buf);
    std::fclose(f);
  }
}

}  // namespace wsc_preload

#endif  // WSC_BENCH_PRELOAD_PRELOAD_UTIL_H_
