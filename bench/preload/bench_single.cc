// Single-threaded malloc/free throughput sweep.
//
// A rotating window of live objects with a size distribution spanning the
// small-object classes and the page-heap path (16 B .. 512 KiB), matching
// the hot path the paper's Figure 4 measures. Run twice — bare and under
// LD_PRELOAD=libwscmalloc.so — and compare ns_per_op.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "preload_util.h"

namespace {

constexpr size_t kWindow = 4096;

size_t PickSize(wsc_preload::Rng& rng) {
  // ~90% small (16 B – 4 KiB, log-uniform), ~9% mid, ~1% large. Mirrors
  // the fleet-wide object-size CDF shape (most objects small, most bytes
  // in the tail).
  const uint64_t r = rng.Next();
  const uint64_t pct = r % 100;
  const uint64_t u = r >> 8;
  if (pct < 90) return 16u << (u % 9);         // 16 B .. 4 KiB
  if (pct < 99) return 8192u << (u % 4);       // 8 KiB .. 64 KiB
  return 131072u << (u % 3);                   // 128 KiB .. 512 KiB
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsc_preload;
  PreloadFlags flags = ParsePreloadFlags(argc, argv);
  ShimApi shim = DiscoverShim();
  AppendShimStats(flags, "single", shim, "pre");

  void** window = static_cast<void**>(std::calloc(kWindow, sizeof(void*)));
  size_t* sizes = static_cast<size_t*>(std::calloc(kWindow, sizeof(size_t)));
  Rng rng(flags.seed);

  const uint64_t t0 = NowNanos();
  for (uint64_t op = 0; op < flags.ops; ++op) {
    const size_t slot = rng.Next() % kWindow;
    if (window[slot] != nullptr) {
      // Touch before free so the object is actually resident.
      static_cast<volatile char*>(window[slot])[sizes[slot] - 1] = 0;
      std::free(window[slot]);
      window[slot] = nullptr;
    }
    const size_t size = PickSize(rng);
    void* p = std::malloc(size);
    if (p == nullptr) std::abort();
    std::memset(p, 0xA5, size < 64 ? size : 64);
    window[slot] = p;
    sizes[slot] = size;
  }
  const uint64_t t1 = NowNanos();

  for (size_t i = 0; i < kWindow; ++i) std::free(window[i]);
  std::free(window);
  std::free(sizes);

  AppendShimStats(flags, "single", shim, "post");

  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"single\",\"allocator\":\"%s\",\"ops\":%llu,"
                "\"ns_per_op\":%.2f,\"rss_bytes\":%zu}",
                AllocatorName(shim),
                static_cast<unsigned long long>(flags.ops),
                static_cast<double>(t1 - t0) / static_cast<double>(flags.ops),
                ReadRssBytes());
  EmitReport(flags, "single", line);
  return 0;
}
