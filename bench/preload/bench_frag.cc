// Fragmentation / memory-return probe.
//
// Builds a large mixed-size population, frees a checkerboard of it (every
// other object — the worst case for page-level reuse), then asks the
// allocator to give memory back and reports RSS at each stage. Under the
// shim the release step calls wscmalloc_release_memory(), which routes to
// RealThreadsAllocator::ReleaseMemoryToSystem → madvise(MADV_DONTNEED);
// under glibc it calls malloc_trim-equivalent via free() alone (no-op),
// so the rss_after_release column is the interesting comparison.

#include <malloc.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "preload_util.h"

namespace {

size_t PickSize(wsc_preload::Rng& rng) {
  const uint64_t r = rng.Next();
  // 90% small-class objects, 10% above kMaxSmallSize (256 KiB) so they
  // take the page-heap large path — the only releasable population in
  // wscmalloc (small-class spans are recycled, never returned).
  if (r % 100 < 90) return 64u << ((r >> 8) % 7);  // 64 B .. 4 KiB
  return size_t{512} * 1024;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsc_preload;
  PreloadFlags flags = ParsePreloadFlags(argc, argv);
  ShimApi shim = DiscoverShim();
  AppendShimStats(flags, "frag", shim, "pre");

  const size_t population = static_cast<size_t>(flags.ops);
  std::vector<void*> objs(population, nullptr);
  Rng rng(flags.seed);
  for (size_t i = 0; i < population; ++i) {
    const size_t size = PickSize(rng);
    objs[i] = std::malloc(size);
    if (objs[i] == nullptr) std::abort();
    std::memset(objs[i], 0xEE, size);  // fault everything in
  }
  const size_t rss_peak = ReadRssBytes();

  // Checkerboard free: half the bytes die but nearly every page stays
  // partially live — the fragmentation regime of Figure 5.
  for (size_t i = 0; i < population; i += 2) {
    std::free(objs[i]);
    objs[i] = nullptr;
  }
  const size_t rss_after_free = ReadRssBytes();

  size_t released = 0;
  if (shim.active() && shim.release_memory != nullptr) {
    released = shim.release_memory(~size_t{0});
  } else {
    malloc_trim(0);
  }
  const size_t rss_after_release = ReadRssBytes();

  for (size_t i = 1; i < population; i += 2) std::free(objs[i]);

  AppendShimStats(flags, "frag", shim, "post");

  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"frag\",\"allocator\":\"%s\",\"population\":%zu,"
      "\"rss_peak\":%zu,\"rss_after_free\":%zu,\"rss_after_release\":%zu,"
      "\"released_bytes\":%zu}",
      AllocatorName(shim), population, rss_peak, rss_after_free,
      rss_after_release, released);
  EmitReport(flags, "frag", line);
  return 0;
}
