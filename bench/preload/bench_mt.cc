// Multi-threaded throughput with cross-thread frees.
//
// N workers each run a private rotating window, and every 16th object is
// handed to the next worker's inbox and freed remotely — exercising the
// transfer-cache / central-free-list path rather than pure thread-local
// recycling. The pre/post shim stats snapshots (--out-dir) let CI assert
// that the allocation/free delta balances: every object malloc'd during
// the run is freed by the end, so post.allocations - pre.allocations ==
// post.frees - pre.frees.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "preload_util.h"

namespace {

constexpr size_t kWindow = 1024;
constexpr int kHandoffEvery = 16;

struct Inbox {
  std::mutex mu;
  std::vector<void*> objs;
  char pad[64];
};

size_t PickSize(wsc_preload::Rng& rng) {
  const uint64_t u = rng.Next();
  return 16u << (u % 10);  // 16 B .. 8 KiB
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsc_preload;
  PreloadFlags flags = ParsePreloadFlags(argc, argv);
  ShimApi shim = DiscoverShim();

  // Warm glibc's thread-stack/TLS cache before the "pre" snapshot: the
  // first pthread_create per stack slot mallocs a DTV that is cached (not
  // freed) at thread exit, which would otherwise show up as a permanent
  // allocations-vs-frees imbalance in the conservation check.
  {
    std::vector<std::thread> warmup;
    for (int t = 0; t < flags.threads; ++t) warmup.emplace_back([] {});
    for (auto& w : warmup) w.join();
  }

  AppendShimStats(flags, "mt", shim, "pre");

  uint64_t t0 = 0;
  uint64_t t1 = 0;
  // Scoped so every harness container is destroyed before the "post"
  // stats snapshot — the pre/post allocation/free delta must balance
  // exactly for the CI conservation check.
  {
  std::vector<Inbox> inboxes(flags.threads);

  t0 = NowNanos();
  std::vector<std::thread> workers;
  workers.reserve(flags.threads);
  for (int t = 0; t < flags.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(flags.seed * 1000003ull + static_cast<uint64_t>(t));
      Inbox& peer = inboxes[(t + 1) % flags.threads];
      Inbox& mine = inboxes[t];
      std::vector<void*> window(kWindow, nullptr);
      std::vector<void*> drained;
      for (uint64_t op = 0; op < flags.ops; ++op) {
        const size_t slot = rng.Next() % kWindow;
        if (window[slot] != nullptr) {
          if (op % kHandoffEvery == 0) {
            std::lock_guard<std::mutex> lock(peer.mu);
            peer.objs.push_back(window[slot]);
          } else {
            std::free(window[slot]);
          }
          window[slot] = nullptr;
        }
        void* p = std::malloc(PickSize(rng));
        if (p == nullptr) std::abort();
        std::memset(p, 0x5A, 16);
        window[slot] = p;
        // Drain remote frees opportunistically.
        if (op % 64 == 0) {
          {
            std::lock_guard<std::mutex> lock(mine.mu);
            drained.swap(mine.objs);
          }
          for (void* q : drained) std::free(q);
          drained.clear();
        }
      }
      for (void* p : window) std::free(p);
    });
  }
  for (auto& w : workers) w.join();
  t1 = NowNanos();

  // Workers may exit while a slower peer is still pushing into their
  // inbox; the post-join drain keeps allocations == frees.
  for (auto& inbox : inboxes) {
    for (void* p : inbox.objs) std::free(p);
  }
  }  // harness containers die here

  AppendShimStats(flags, "mt", shim, "post");

  const uint64_t total_ops = flags.ops * static_cast<uint64_t>(flags.threads);
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"mt\",\"allocator\":\"%s\",\"threads\":%d,"
                "\"ops\":%llu,\"ns_per_op\":%.2f,\"rss_bytes\":%zu}",
                AllocatorName(shim), flags.threads,
                static_cast<unsigned long long>(total_ops),
                static_cast<double>(t1 - t0) / static_cast<double>(total_ops),
                ReadRssBytes());
  EmitReport(flags, "mt", line);
  return 0;
}
