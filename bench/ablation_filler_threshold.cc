// Ablation: span-capacity threshold C separating short-lived from
// long-lived hugepage sets in the lifetime-aware filler.
//
// Paper (Section 4.4): "Our experiments reveal C = 16 as an acceptable
// threshold for separating span allocations."

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Ablation: lifetime filler capacity threshold (C)");
  bench::BenchTimer timer("ablation_filler_threshold");
  uint64_t sim_requests = 0;

  tcmalloc::AllocatorConfig control;  // lifetime awareness off
  workload::WorkloadSpec spec = bench::PackingStressSpec();

  TablePrinter table({"C", "coverage before", "coverage after",
                      "dTLB walk% change", "memory change"});
  for (int threshold : {2, 4, 8, 16, 64, 512}) {
    tcmalloc::AllocatorConfig experiment =
        tcmalloc::AllocatorConfig::Builder()
            .WithLifetimeAwareFiller()
            .WithFillerCapacityThreshold(threshold)
            .Build();
    fleet::AbDelta delta =
        bench::BenchmarkAb(spec, control, experiment, 8200);
    sim_requests += static_cast<uint64_t>(delta.control.requests +
                                          delta.experiment.requests);
    bench::ReportTelemetry(
        "ablation_filler_threshold/C" + std::to_string(threshold), delta);
    double walk_before = delta.control.DtlbWalkFraction();
    double walk_after = delta.experiment.DtlbWalkFraction();
    table.AddRow(
        {std::to_string(threshold),
         FormatDouble(100.0 * delta.control.HugepageCoverage(), 1) + "%",
         FormatDouble(100.0 * delta.experiment.HugepageCoverage(), 1) + "%",
         FormatSignedPercent(walk_before > 0
                                 ? 100.0 * (walk_after - walk_before) /
                                       walk_before
                                 : 0.0),
         FormatSignedPercent(delta.MemoryChangePct())});
  }
  table.Print();
  std::printf(
      "\nexpected: very small C leaves the short-lived set nearly empty;\n"
      "very large C pushes pinned small-object spans into it; C = 16 (the\n"
      "paper's choice) separates the high-return-rate spans (Fig. 16).\n");
  timer.Report(sim_requests);
  return 0;
}
