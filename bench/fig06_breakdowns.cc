// Fig. 6: (a) breakdown of CPU cycles consumed by TCMalloc per component
// and (b) memory-fragmentation breakdown per tier.
//
// Paper (fleet): cycles — CPUCache 53%, TransferCache 3%, CentralFreeList
// 12%, PageHeap 3%, Sampled 4%, Prefetch 16%, Other the rest.
// Fragmentation — CentralFreeList 29%, PageHeap 51%, Internal 15%, the
// front-end caches the rest.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"

using namespace wsc;

namespace {

struct FragRow {
  std::string name;
  double cpu_cache, transfer, cfl, pageheap, internal;  // percentages
};

FragRow FragBreakdown(const std::string& name,
                      const tcmalloc::HeapStats& stats) {
  double total = static_cast<double>(stats.ExternalFragmentation() +
                                     stats.InternalFragmentation());
  FragRow row{name, 0, 0, 0, 0, 0};
  if (total <= 0) return row;
  row.cpu_cache = 100.0 * stats.cpu_cache_free / total;
  row.transfer = 100.0 * stats.transfer_cache_free / total;
  row.cfl = 100.0 * stats.central_free_list_free / total;
  row.pageheap = 100.0 * stats.page_heap_free / total;
  row.internal = 100.0 * stats.InternalFragmentation() / total;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 6a: malloc CPU-cycle breakdown");
  bench::BenchTimer timer("fig06_breakdowns");

  // Fleet-wide cycle breakdown.
  fleet::Fleet fleet(bench::DefaultFleet(), tcmalloc::AllocatorConfig(), 6);
  fleet.Run();
  uint64_t sim_requests = bench::TotalRequests(fleet.observations());
  telemetry::Snapshot merged_telemetry =
      fleet::MergedTelemetry(fleet.observations());
  tcmalloc::MallocCycleBreakdown cycles;
  tcmalloc::HeapStats fleet_heap;
  for (const auto& obs : fleet.observations()) {
    const auto& c = obs.result.malloc_cycles;
    cycles.cpu_cache_ns += c.cpu_cache_ns;
    cycles.transfer_cache_ns += c.transfer_cache_ns;
    cycles.central_free_list_ns += c.central_free_list_ns;
    cycles.page_heap_ns += c.page_heap_ns;
    cycles.mmap_ns += c.mmap_ns;
    cycles.sampled_ns += c.sampled_ns;
    cycles.prefetch_ns += c.prefetch_ns;
    cycles.other_ns += c.other_ns;
    const auto& h = obs.result.heap;
    fleet_heap.live_bytes += h.live_bytes;
    fleet_heap.requested_bytes += h.requested_bytes;
    fleet_heap.cpu_cache_free += h.cpu_cache_free;
    fleet_heap.transfer_cache_free += h.transfer_cache_free;
    fleet_heap.central_free_list_free += h.central_free_list_free;
    fleet_heap.page_heap_free += h.page_heap_free;
  }
  double total = cycles.Total();
  TablePrinter cycle_table({"component", "measured %", "paper %"});
  auto pct = [&](double v) { return FormatDouble(100.0 * v / total, 1); };
  cycle_table.AddRow({"CPUCache", pct(cycles.cpu_cache_ns), "53"});
  cycle_table.AddRow({"TransferCache", pct(cycles.transfer_cache_ns), "3"});
  cycle_table.AddRow(
      {"CentralFreeList", pct(cycles.central_free_list_ns), "12"});
  cycle_table.AddRow(
      {"PageHeap (+mmap)", pct(cycles.page_heap_ns + cycles.mmap_ns), "3"});
  cycle_table.AddRow({"Sampled", pct(cycles.sampled_ns), "4"});
  cycle_table.AddRow({"Prefetch", pct(cycles.prefetch_ns), "16"});
  cycle_table.AddRow({"Other", pct(cycles.other_ns), "9"});
  cycle_table.Print();

  PrintBanner("Fig. 6b: memory fragmentation breakdown");
  std::vector<FragRow> rows;
  rows.push_back(FragBreakdown("fleet", fleet_heap));
  uint64_t seed = 600;
  for (const auto& spec : workload::TopFiveProfiles()) {
    fleet::Machine machine(
        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), {spec},
        tcmalloc::AllocatorConfig(), seed++);
    machine.Run(bench::BenchDuration(Seconds(16)),
                bench::BenchMaxRequests(80000));
    rows.push_back(FragBreakdown(spec.name, machine.results()[0].heap));
    merged_telemetry.MergeFrom(machine.results()[0].telemetry);
  }
  TablePrinter frag_table({"workload", "CPUCache %", "TransferCache %",
                           "CentralFreeList %", "PageHeap %", "Internal %"});
  for (const FragRow& row : rows) {
    frag_table.AddRow({row.name, FormatDouble(row.cpu_cache, 1),
                       FormatDouble(row.transfer, 1),
                       FormatDouble(row.cfl, 1),
                       FormatDouble(row.pageheap, 1),
                       FormatDouble(row.internal, 1)});
  }
  frag_table.Print();
  bench::PaperVsMeasured(
      "fleet frag breakdown CFL/PageHeap/Internal", "29 / 51 / 15",
      FormatDouble(rows[0].cfl, 0) + " / " +
          FormatDouble(rows[0].pageheap, 0) + " / " +
          FormatDouble(rows[0].internal, 0));
  std::printf(
      "\nshape check: the page heap and central free list dominate\n"
      "fragmentation; the front-end caches are minor contributors.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
