// Fig. 13: correlation between the number of live allocations on a span
// and the probability the span is returned to the page heap (16 B size
// class in the paper).
//
// Paper: spans with few live allocations are released at a high rate; the
// rate falls steeply as live allocations grow — the basis for span
// prioritization. The fleet telemetry behind the figure spans two weeks of
// demand ebb and flow; this bench compresses that into epochs: each epoch
// allocates a burst of 16 B objects with heavily skewed lifetimes, retires
// the expired ones, lets the background maintenance drain the caches (as
// happens on production machines when a class goes quiet), and snapshots
// every span's live count. A span "returns" if it leaves the central free
// list before the next snapshot.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/malloc_extension.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 13: span return rate vs live allocations");
  bench::BenchTimer timer("fig13_span_return_rate");

  tcmalloc::AllocatorConfig config =
      tcmalloc::AllocatorConfig::Builder().WithVcpus(4).Build();
  tcmalloc::Allocator alloc(config);
  Rng rng(1301);

  int cls = alloc.size_classes().ClassFor(16);
  int capacity = alloc.size_classes().objects_per_span(cls);
  std::printf("size class: %zu B, span capacity %d objects\n",
              alloc.size_classes().class_size(cls), capacity);

  struct Live {
    uintptr_t addr;
    int death_epoch;
  };
  std::vector<Live> live;
  auto& cfl = alloc.central_free_list(cls);
  std::map<int, std::pair<uint64_t, uint64_t>> by_bucket;
  std::vector<tcmalloc::CentralFreeList::SpanSnapshot> last_snapshot;

  const int kEpochs =
      bench::g_bench_max_requests > 0
          ? static_cast<int>(
                std::min<uint64_t>(bench::g_bench_max_requests, 250))
          : 250;
  SimTime now = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // Demand follows a slow load wave (the fleet's diurnal dynamics):
    // during deep troughs the class sees almost no allocations and spans
    // drain without being refilled.
    double load = 0.5 + 0.5 * std::sin(2.0 * M_PI * epoch / 50.0);
    load *= 0.8 + 0.4 * rng.UniformDouble();
    int burst = static_cast<int>(30000 * std::max(0.0, load - 0.15));
    // Lifetimes are temporally correlated: objects allocated together in
    // one request phase mostly die together (chunks of 256 consecutive
    // allocations share a death epoch), with a 10% per-object straggler
    // tail. This is what lets spans fully drain in production — and what
    // leaves low-occupancy spans pinned by a handful of stragglers.
    int chunk_death = epoch + 1;
    for (int i = 0; i < burst; ++i) {
      if (i % 256 == 0) {
        int lifetime = 1;
        while (lifetime < 64 && rng.Bernoulli(0.30)) lifetime *= 2;
        chunk_death = epoch + lifetime;
      }
      int death = chunk_death;
      if (rng.Bernoulli(0.1)) {
        int lifetime = 1;
        while (lifetime < 64 && rng.Bernoulli(0.30)) lifetime *= 2;
        death = epoch + lifetime;
      }
      uintptr_t addr = alloc.Allocate(8 + rng.UniformInt(9), 0, now);
      live.push_back({addr, death});
    }
    // Retire expired objects.
    size_t kept = 0;
    for (const Live& obj : live) {
      if (obj.death_epoch > epoch) {
        live[kept++] = obj;
      } else {
        alloc.Free(obj.addr, 0, now);
      }
    }
    live.resize(kept);

    // Background maintenance: two passes a resize-interval apart let idle
    // vCPU caches be reclaimed and cold transfer-cache objects drain,
    // exactly like a production machine whose class went quiet.
    now += Seconds(6);
    alloc.Maintain(now);
    now += Seconds(6);
    alloc.Maintain(now);

    // Telemetry: which of last epoch's spans returned, by live count.
    std::vector<uint64_t> returned = cfl.DrainReturnedSpanIds();
    std::set<uint64_t> returned_set(returned.begin(), returned.end());
    for (const auto& snap : last_snapshot) {
      int bucket = snap.live_objects * 10 / capacity;
      auto& [obs, ret] = by_bucket[bucket];
      ++obs;
      if (returned_set.count(snap.span_id)) ++ret;
    }
    last_snapshot = cfl.SnapshotSpans();
  }

  TablePrinter table({"live allocations (decile of capacity)",
                      "spans observed", "return rate %"});
  std::vector<std::pair<double, double>> series;
  for (const auto& [bucket, counts] : by_bucket) {
    double rate =
        counts.first > 0 ? 100.0 * counts.second / counts.first : 0.0;
    table.AddRow({std::to_string(bucket * 10) + "-" +
                      std::to_string(bucket * 10 + 10) + "%",
                  std::to_string(counts.first), FormatDouble(rate, 2)});
    series.push_back({bucket * 10.0, rate});
  }
  table.Print();

  double low = series.empty() ? 0 : series.front().second;
  double high = series.empty() ? 0 : series.back().second;
  bench::PaperVsMeasured(
      "return rate, few vs many live allocations", "high -> near zero",
      FormatDouble(low, 1) + "% -> " + FormatDouble(high, 1) + "%");
  std::printf(
      "\nshape check: the more live allocations a span carries, the less\n"
      "likely it is released — allocating from fuller spans is safer.\n");
  timer.Report(static_cast<uint64_t>(kEpochs));
  bench::ReportTelemetry(timer.bench(), tcmalloc::MallocExtension(&alloc).GetTelemetrySnapshot());
  return 0;
}
