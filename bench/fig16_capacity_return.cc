// Fig. 16: correlation between span capacity (objects per span) and the
// span's rate of returning from the central free list to the hugepage
// filler, across size classes.
//
// Paper: strong negative correlation, Spearman coefficient -0.75.
// Capacity-1 spans (large size classes) return almost always; very
// high-capacity spans (tiny size classes) essentially never return — which
// is why span capacity is a statically known lifetime proxy.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "fleet/machine.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 16: span capacity vs span return rate");
  bench::BenchTimer timer("fig16_capacity_return");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  const tcmalloc::SizeClasses& sc = tcmalloc::SizeClasses::Default();
  std::vector<double> fetched(sc.num_classes(), 0);
  std::vector<double> returned(sc.num_classes(), 0);

  // Aggregate CFL telemetry across the production and benchmark profiles.
  std::vector<workload::WorkloadSpec> specs = workload::TopFiveProfiles();
  for (const auto& s : workload::BenchmarkProfiles()) specs.push_back(s);
  uint64_t seed = 1600;
  for (const auto& spec : specs) {
    fleet::Machine machine(
        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), {spec},
        tcmalloc::AllocatorConfig(), seed++);
    machine.Run(bench::BenchDuration(Seconds(12)),
                bench::BenchMaxRequests(70000));
    sim_requests += machine.results()[0].driver.requests;
    merged_telemetry.MergeFrom(machine.results()[0].telemetry);
    tcmalloc::Allocator& alloc = machine.allocator(0);
    for (int cls = 0; cls < sc.num_classes(); ++cls) {
      fetched[cls] += static_cast<double>(
          alloc.central_free_list(cls).stats().fetched_spans);
      returned[cls] += static_cast<double>(
          alloc.central_free_list(cls).stats().returned_spans);
    }
  }

  std::vector<double> capacities, rates;
  TablePrinter table({"class size", "span capacity", "spans fetched",
                      "return rate %"});
  for (int cls = 0; cls < sc.num_classes(); ++cls) {
    if (fetched[cls] < 10) continue;  // too few observations
    double rate = returned[cls] / fetched[cls];
    capacities.push_back(static_cast<double>(sc.objects_per_span(cls)));
    rates.push_back(rate);
    table.AddRow({FormatBytes(static_cast<double>(sc.class_size(cls))),
                  std::to_string(sc.objects_per_span(cls)),
                  FormatDouble(fetched[cls], 0),
                  FormatDouble(100.0 * rate, 1)});
  }
  table.Print();

  double spearman = SpearmanCorrelation(capacities, rates);
  bench::PaperVsMeasured("Spearman correlation (capacity vs return rate)",
                         "-0.75", FormatDouble(spearman, 2));
  // Leftmost vs rightmost of the paper's figure.
  double low_cap_rate = 0, high_cap_rate = 0;
  int low_n = 0, high_n = 0;
  for (size_t i = 0; i < capacities.size(); ++i) {
    if (capacities[i] <= 4) {
      low_cap_rate += rates[i];
      ++low_n;
    }
    if (capacities[i] >= 256) {
      high_cap_rate += rates[i];
      ++high_n;
    }
  }
  bench::PaperVsMeasured(
      "return rate, capacity<=4 vs capacity>=256 spans",
      "near 100% vs near 0%",
      FormatDouble(low_n ? 100.0 * low_cap_rate / low_n : 0, 1) + "% vs " +
          FormatDouble(high_n ? 100.0 * high_cap_rate / high_n : 0, 1) +
          "%");
  std::printf(
      "\nshape check: span capacity predicts span lifetime with zero\n"
      "runtime overhead — the key enabler of the lifetime-aware filler.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
