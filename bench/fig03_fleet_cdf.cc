// Fig. 3: fleet-wide cumulative distribution of malloc cycles and
// allocated memory across binaries.
//
// Paper: the top 50 binaries cover only ~50% of fleet malloc cycles and
// ~65% of allocated memory — there is no killer app to optimize, which is
// why the paper optimizes the allocator (datacenter tax) instead.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 3: CDF of malloc cycles and allocated memory by binary");
  bench::BenchTimer timer("fig03_fleet_cdf");

  // Many short-lived process observations: the CDF needs a wide binary
  // population, not long runs. The popularity skew is milder than the
  // default so the tail carries weight, as in the fleet.
  fleet::FleetConfig config;
  config.num_machines = 64;
  config.num_binaries = 150;
  config.zipf_exponent = 0.8;
  config.min_colocated = 2;
  config.max_colocated = 4;
  config.duration = Seconds(2);
  config.max_requests_per_process = 5000;
  bench::ApplyBenchOverrides(config);

  fleet::Fleet f(config, tcmalloc::AllocatorConfig(), /*seed=*/20240427);
  f.Run();
  timer.Report(bench::TotalRequests(f.observations()));
  bench::ReportTelemetry(timer.bench(), f.observations());

  // Aggregate malloc cycles and allocated bytes per binary.
  std::map<int, double> cycles_by_binary;
  std::map<int, double> bytes_by_binary;
  double total_cycles = 0, total_bytes = 0;
  for (const fleet::FleetObservation& obs : f.observations()) {
    double cycles = obs.result.driver.malloc_ns;
    double alloc_bytes = obs.result.avg_heap_bytes;  // memory footprint
    cycles_by_binary[obs.binary_rank] += cycles;
    bytes_by_binary[obs.binary_rank] += alloc_bytes;
    total_cycles += cycles;
    total_bytes += alloc_bytes;
  }

  auto cdf_at = [](std::map<int, double>& by_binary, double total, int k) {
    std::vector<double> values;
    for (auto& [rank, v] : by_binary) values.push_back(v);
    std::sort(values.rbegin(), values.rend());
    double acc = 0;
    for (int i = 0; i < k && i < static_cast<int>(values.size()); ++i) {
      acc += values[i];
    }
    return total > 0 ? 100.0 * acc / total : 0.0;
  };

  std::printf("binaries observed: %zu (of %d in the mix)\n",
              cycles_by_binary.size(), config.num_binaries);
  TablePrinter table({"top-k binaries", "% of malloc cycles",
                      "% of allocated memory"});
  for (int k : {1, 5, 10, 20, 30, 40, 50}) {
    table.AddRow({std::to_string(k),
                  FormatDouble(cdf_at(cycles_by_binary, total_cycles, k), 1),
                  FormatDouble(cdf_at(bytes_by_binary, total_bytes, k), 1)});
  }
  table.Print();

  bench::PaperVsMeasured(
      "top 50 binaries, % of malloc cycles", "~50%",
      FormatDouble(cdf_at(cycles_by_binary, total_cycles, 50), 1) + "%");
  bench::PaperVsMeasured(
      "top 50 binaries, % of allocated memory", "~65%",
      FormatDouble(cdf_at(bytes_by_binary, total_bytes, 50), 1) + "%");
  std::printf(
      "\nshape check: the distribution has a heavy tail — no small set of\n"
      "binaries dominates, motivating allocator-level (datacenter tax)\n"
      "optimization.\n");
  return 0;
}
