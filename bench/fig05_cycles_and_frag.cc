// Fig. 5: (a) % of CPU cycles spent in memory allocation and (b) memory
// fragmentation ratio, for the fleet, the top-5 production workloads, and
// a SPEC CPU2006-like contrast workload.
//
// Paper: fleet malloc tax 4.3% (top 5: 3.6%-10.1%, SPEC ~0); fleet
// fragmentation 22.2% of heap (18.8% external + 3.4% internal; top 5:
// 11.2%-42.5%).

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"

using namespace wsc;

namespace {

struct Row {
  std::string name;
  double malloc_pct;
  double ext_frag_pct;
  double int_frag_pct;
};

Row RunWorkload(const workload::WorkloadSpec& spec, uint64_t seed,
                telemetry::Snapshot& telemetry) {
  fleet::Machine machine(hw::PlatformSpecFor(hw::PlatformGeneration::kGenD),
                         {spec}, tcmalloc::AllocatorConfig(), seed);
  machine.Run(bench::BenchDuration(Seconds(16)),
              bench::BenchMaxRequests(90000));
  const fleet::ProcessResult& r = machine.results()[0];
  telemetry.MergeFrom(r.telemetry);
  Row row;
  row.name = spec.name;
  row.malloc_pct = 100.0 * r.driver.MallocCycleFraction();
  // Time-averaged fragmentation (a point-in-time snapshot at a load trough
  // would overstate it); internal share estimated from the final snapshot.
  double avg_frag = r.avg_heap_bytes - r.avg_live_bytes;
  double int_share =
      r.heap.ExternalFragmentation() + r.heap.InternalFragmentation() > 0
          ? static_cast<double>(r.heap.InternalFragmentation()) /
                (r.heap.ExternalFragmentation() +
                 r.heap.InternalFragmentation())
          : 0.0;
  double frag_pct =
      r.avg_live_bytes > 0 ? 100.0 * avg_frag / r.avg_live_bytes : 0.0;
  row.ext_frag_pct = frag_pct * (1.0 - int_share);
  row.int_frag_pct = frag_pct * int_share;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 5: malloc cycle share and fragmentation ratio");
  bench::BenchTimer timer("fig05_cycles_and_frag");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  std::vector<Row> rows;
  // Fleet-wide numbers from a mixed fleet.
  {
    fleet::Fleet fleet(bench::DefaultFleet(), tcmalloc::AllocatorConfig(),
                       5);
    fleet.Run();
    sim_requests += bench::TotalRequests(fleet.observations());
    merged_telemetry.MergeFrom(fleet::MergedTelemetry(fleet.observations()));
    fleet::MetricSet set;
    double int_frag = 0, all_frag = 0;
    for (const auto& obs : fleet.observations()) {
      Accumulate(set, obs.result);
      int_frag +=
          static_cast<double>(obs.result.heap.InternalFragmentation());
      all_frag += static_cast<double>(
          obs.result.heap.ExternalFragmentation() +
          obs.result.heap.InternalFragmentation());
    }
    double frag_pct =
        set.live_bytes > 0 ? 100.0 * set.frag_bytes / set.live_bytes : 0.0;
    double int_share = all_frag > 0 ? int_frag / all_frag : 0.0;
    rows.push_back({"fleet", 100.0 * set.MallocFraction(),
                    frag_pct * (1.0 - int_share), frag_pct * int_share});
  }
  uint64_t seed = 100;
  for (const auto& spec : workload::TopFiveProfiles()) {
    rows.push_back(RunWorkload(spec, seed++, merged_telemetry));
  }
  rows.push_back(
      RunWorkload(workload::SpecLikeProfile(), seed++, merged_telemetry));

  TablePrinter table({"workload", "malloc cycles %", "external frag %",
                      "internal frag %", "total frag %"});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatDouble(row.malloc_pct, 2),
                  FormatDouble(row.ext_frag_pct, 1),
                  FormatDouble(row.int_frag_pct, 1),
                  FormatDouble(row.ext_frag_pct + row.int_frag_pct, 1)});
  }
  table.Print();

  bench::PaperVsMeasured("fleet malloc cycles", "4.3%",
                         FormatDouble(rows[0].malloc_pct, 2) + "%");
  bench::PaperVsMeasured(
      "top-5 malloc cycle range", "3.6% - 10.1%",
      FormatDouble(rows[1].malloc_pct, 1) + "% .. " +
          FormatDouble(rows[5].malloc_pct, 1) + "% (min..max varies)");
  bench::PaperVsMeasured(
      "fleet fragmentation (ext + int)", "22.2% (18.8 + 3.4)",
      FormatDouble(rows[0].ext_frag_pct + rows[0].int_frag_pct, 1) + "% (" +
          FormatDouble(rows[0].ext_frag_pct, 1) + " + " +
          FormatDouble(rows[0].int_frag_pct, 1) + ")");
  bench::PaperVsMeasured("SPEC-like malloc cycles", "~0%",
                         FormatDouble(rows.back().malloc_pct, 2) + "%");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
