// Extension: the memory-pressure control plane driven through the
// MallocExtension facade (the sanctioned public API).
//
// Three scenarios on one dedicated allocator:
//   1. soft limit   — footprint is pushed past a soft limit; the background
//                     reclaimer degrades the tiers (cache shrink, transfer
//                     drain, span return, hugepage subrelease) until the
//                     footprint is back under it.
//   2. explicit     — MallocExtension::ReleaseMemoryToSystem returns free
//                     back-end memory on demand.
//   3. hard limit   — allocations that would exceed a hard limit fail
//                     (Allocate returns 0) and are counted, not fatal.
//
// All introspection flows through MallocExtension: GetFootprintBytes,
// GetProperty("pressure.*"), GetTelemetrySnapshot.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "tcmalloc/malloc_extension.h"

using namespace wsc;

namespace {

// Builds a mixed-size working set and returns the live addresses.
std::vector<std::pair<uintptr_t, int>> BuildWorkingSet(
    tcmalloc::Allocator& alloc, Rng& rng, size_t target_bytes,
    uint64_t* requests) {
  std::vector<std::pair<uintptr_t, int>> live;
  size_t allocated = 0;
  SimTime now = 0;
  while (allocated < target_bytes) {
    int vcpu = static_cast<int>(rng.UniformInt(8));
    size_t size = 1 + rng.UniformInt(rng.Bernoulli(0.02) ? 500000 : 8192);
    uintptr_t p = alloc.Allocate(size, vcpu, now);
    ++*requests;
    if (p == 0) continue;
    live.push_back({p, vcpu});
    allocated += size;
    now += 200;
  }
  return live;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Extension: memory limits & backpressure (MallocExtension)");
  bench::BenchTimer timer("extension_memory_limit");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  // ---- 1. Soft limit: the reclaim cascade ----
  {
    tcmalloc::AllocatorConfig config =
        tcmalloc::AllocatorConfig::Builder()
            .WithVcpus(8)
            .WithAllOptimizations()
            .WithLlcDomains(4)
            .Build();
    tcmalloc::Allocator alloc(config);
    tcmalloc::MallocExtension extension(&alloc);

    Rng rng(77);
    auto live = BuildWorkingSet(alloc, rng, size_t{384} << 20,
                                &sim_requests);
    // Free every other object so the hierarchy holds substantial cached and
    // fragmented memory — the reclaimable part of the footprint.
    SimTime now = Seconds(1);
    for (size_t i = 0; i < live.size(); i += 2) {
      alloc.Free(live[i].first, live[i].second, now);
    }
    alloc.Maintain(now);

    size_t before = extension.GetFootprintBytes();
    size_t soft = static_cast<size_t>(0.6 * static_cast<double>(before));
    extension.SetMemoryLimit(tcmalloc::MemoryLimitKind::kSoft, soft);
    // The next maintenance boundary runs the background actor.
    alloc.Maintain(now + Seconds(2));
    size_t after = extension.GetFootprintBytes();
    double reclaimed =
        extension.GetProperty("pressure.reclaimed_bytes").value_or(0);
    double runs = extension.GetProperty("pressure.reclaim_runs").value_or(0);

    TablePrinter table({"phase", "footprint", "soft limit", "reclaimed"});
    table.AddRow({"before", FormatBytes(static_cast<double>(before)),
                  "-", "-"});
    table.AddRow({"after reclaim", FormatBytes(static_cast<double>(after)),
                  FormatBytes(static_cast<double>(soft)),
                  FormatBytes(reclaimed)});
    table.Print();
    std::printf("  reclaim runs: %.0f; footprint %s soft limit\n\n", runs,
                after <= soft ? "back under" : "still over");

    for (size_t i = 1; i < live.size(); i += 2) {
      alloc.Free(live[i].first, live[i].second, now);
    }
    merged_telemetry.MergeFrom(extension.GetTelemetrySnapshot());
  }

  // ---- 2. Explicit release through the facade ----
  // A load trough: a burst of large buffers comes and goes, leaving whole
  // hugepages cached in the back end; ReleaseMemoryToSystem hands them to
  // the OS on demand.
  {
    tcmalloc::AllocatorConfig config =
        tcmalloc::AllocatorConfig::Builder().WithVcpus(8).Build();
    tcmalloc::Allocator alloc(config);
    tcmalloc::MallocExtension extension(&alloc);

    std::vector<uintptr_t> bufs;
    for (int i = 0; i < 64; ++i) {
      bufs.push_back(alloc.Allocate(size_t{2} << 20, 0, i));
      ++sim_requests;
    }
    for (uintptr_t p : bufs) alloc.Free(p, 0, Seconds(1));

    size_t free_backend = extension.GetFootprintBytes();
    size_t asked = size_t{64} << 20;
    size_t released = extension.ReleaseMemoryToSystem(asked);
    std::printf(
        "  load trough left %s cached; ReleaseMemoryToSystem(%s) "
        "released %s\n\n",
        FormatBytes(static_cast<double>(free_backend)).c_str(),
        FormatBytes(static_cast<double>(asked)).c_str(),
        FormatBytes(static_cast<double>(released)).c_str());
    merged_telemetry.MergeFrom(extension.GetTelemetrySnapshot());
  }

  // ---- 3. Hard limit: counted allocation failures ----
  {
    size_t hard = size_t{96} << 20;
    tcmalloc::AllocatorConfig config =
        tcmalloc::AllocatorConfig::Builder()
            .WithVcpus(8)
            .WithHardMemoryLimit(hard)
            .Build();
    tcmalloc::Allocator alloc(config);
    tcmalloc::MallocExtension extension(&alloc);

    Rng rng(78);
    uint64_t failures = 0, attempts = 0;
    std::vector<std::pair<uintptr_t, int>> live;
    SimTime now = 0;
    // Push well past the limit: every allocation beyond it must fail.
    while (attempts < 400000 && failures < 5000) {
      int vcpu = static_cast<int>(rng.UniformInt(8));
      size_t size = 1 + rng.UniformInt(8192);
      uintptr_t p = alloc.Allocate(size, vcpu, now);
      ++attempts;
      ++sim_requests;
      if (p == 0) {
        ++failures;
      } else {
        live.push_back({p, vcpu});
      }
      now += 200;
    }
    double counted =
        extension.GetProperty("pressure.hard_limit_failures").value_or(0);
    std::printf(
        "  hard limit %s: %llu of %llu allocations failed "
        "(telemetry counted %.0f)\n",
        FormatBytes(static_cast<double>(hard)).c_str(),
        static_cast<unsigned long long>(failures),
        static_cast<unsigned long long>(attempts), counted);
    std::printf("  footprint at refusal: %s (stays under the limit)\n\n",
                FormatBytes(static_cast<double>(
                    extension.GetFootprintBytes())).c_str());

    for (auto& [p, v] : live) alloc.Free(p, v, now);
    merged_telemetry.MergeFrom(extension.GetTelemetrySnapshot());
  }

  bench::PaperVsMeasured("pressure handling", "graceful degradation (§4.4)",
                         "tiered reclaim + counted failures");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
