// Fig. 10: memory reduction from heterogeneous (usage-based dynamically
// sized) per-CPU caches, with the default per-vCPU capacity halved from
// 3 MiB to 1.5 MiB.
//
// Paper: fleet -1.94% memory; top-5 apps -0.58% .. -2.45%; dedicated
// benchmarks: data-pipeline -2.66%, image-processing -2.27%, tensorflow
// -2.08% (Redis omitted: single-threaded, uses one per-CPU cache).

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 10: memory reduction with heterogeneous per-CPU caches");
  bench::BenchTimer timer("fig10_heterogeneous_cache");

  tcmalloc::AllocatorConfig control;  // static 3 MiB caches
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder()
          .WithDynamicCpuCaches()
          .WithCpuCacheBytes(control.per_cpu_cache_bytes / 2)
          .Build();

  fleet::AbResult ab =
      fleet::RunFleetAb(bench::DefaultFleet(), control, experiment, 1010);

  TablePrinter table({"workload", "memory reduction %", "paper %"});
  auto add = [&table](const fleet::AbDelta& delta, const char* paper) {
    table.AddRow({delta.label,
                  FormatDouble(-delta.MemoryChangePct(), 2), paper});
  };
  add(ab.fleet, "1.94");
  for (size_t i = 0; i < ab.per_app.size(); ++i) {
    if (ab.per_app[i].control.processes > 0) {
      add(ab.per_app[i], "0.58-2.45");
    }
  }

  // Dedicated-server benchmarks (Redis omitted: single per-CPU cache).
  const char* paper_bench[] = {nullptr, "2.66", "2.27", "2.08"};
  auto benchmarks = workload::BenchmarkProfiles();
  for (size_t i = 1; i < benchmarks.size(); ++i) {
    fleet::AbDelta delta =
        bench::BenchmarkAb(benchmarks[i], control, experiment, 1020 + i);
    add(delta, paper_bench[i]);
  }
  table.Print();

  bench::PaperVsMeasured("fleet memory reduction", "1.94%",
                         FormatDouble(-ab.fleet.MemoryChangePct(), 2) + "%");
  bench::PaperVsMeasured(
      "throughput impact", "none",
      FormatSignedPercent(ab.fleet.ThroughputChangePct()));
  std::printf(
      "\nshape check: dynamic sizing lets the halved caches serve the same\n"
      "load, reducing cached-but-unused memory across every tier.\n");
  timer.Report(bench::TotalRequests(ab));
  bench::ReportTelemetry(timer.bench(), ab);
  return 0;
}
