// Fig. 4: disparity in allocation latency across the TCMalloc cache tiers.
//
// Paper (production x86): CPUCache 3.1 ns, TransferCache 12.9 ns,
// CentralFreeList 16.7 ns, PageHeap 137 ns, mmap orders of magnitude more.
//
// We report two things per tier:
//   (1) the *simulated* cost charged by the calibrated cost model (these
//       reproduce the paper's numbers by construction, and every other
//       experiment builds on them), and
//   (2) the *host-measured* wall-clock cost of this implementation's code
//       path, via google-benchmark, to show the implementation preserves
//       the ordering cpu-cache << transfer-cache < CFL << pageheap.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/malloc_extension.h"

namespace {

using wsc::tcmalloc::Allocator;
using wsc::tcmalloc::AllocatorConfig;

AllocatorConfig BenchConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(2)
      .WithArena(uintptr_t{1} << 44, size_t{32} << 30)
      .Build();
}

// Fast path: allocation served by the per-CPU cache (pre-warmed: each
// iteration frees right back, so the object stays in the vCPU cache).
void BM_CpuCacheHit(benchmark::State& state) {
  Allocator alloc(BenchConfig());
  uintptr_t p = alloc.Allocate(64, 0, 0);
  alloc.Free(p, 0, 0);
  for (auto _ : state) {
    uintptr_t q = alloc.Allocate(64, 0, 0);
    benchmark::DoNotOptimize(q);
    alloc.Free(q, 0, 0);
  }
  state.SetLabel("paper: 3.1 ns (simulated cost: " +
                 std::to_string(BenchConfig().costs.cpu_cache_hit_ns) +
                 " ns)");
}

// Transfer-cache path: one insert + one remove of a batch through the
// mutex-protected flat-array cache (reported per round trip).
void BM_TransferCacheRoundTrip(benchmark::State& state) {
  Allocator alloc(BenchConfig());
  int cls = alloc.size_classes().ClassFor(64);
  uintptr_t obj = alloc.Allocate(64, 0, 0);
  auto& tc = alloc.transfer_cache();
  for (auto _ : state) {
    tc.Insert(0, cls, &obj, 1);
    uintptr_t out = 0;
    tc.Remove(0, cls, &out, 1);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("paper: 12.9 ns (simulated cost: " +
                 std::to_string(BenchConfig().costs.transfer_cache_ns) +
                 " ns)");
}

// Central-free-list path: extract an object from a span's linked-list
// structure and return it (reported per round trip).
void BM_CentralFreeListRoundTrip(benchmark::State& state) {
  Allocator alloc(BenchConfig());
  int cls = alloc.size_classes().ClassFor(512);
  auto& cfl = alloc.central_free_list(cls);
  // Pin one object so the span stays resident in the CFL (otherwise every
  // round trip would return the span to the page heap and re-fetch it).
  uintptr_t pin = 0;
  cfl.RemoveRange(&pin, 1);
  for (auto _ : state) {
    uintptr_t obj = 0;
    cfl.RemoveRange(&obj, 1);
    benchmark::DoNotOptimize(obj);
    wsc::tcmalloc::Span* span = alloc.pagemap().LookupAddr(obj);
    cfl.InsertObject(span, obj);
  }
  state.SetLabel("paper: 16.7 ns (simulated cost: " +
                 std::to_string(BenchConfig().costs.central_free_list_ns) +
                 " ns)");
}

// Page-heap path: large allocations bypass all caches.
void BM_PageHeap(benchmark::State& state) {
  Allocator alloc(BenchConfig());
  for (auto _ : state) {
    uintptr_t q = alloc.Allocate(1 << 20, 0, 0);
    benchmark::DoNotOptimize(q);
    alloc.Free(q, 0, 0);
  }
  state.SetLabel("paper: 137 ns (simulated cost: " +
                 std::to_string(BenchConfig().costs.page_heap_ns) + " ns)");
}

// mmap path: every allocation grows the arena (nothing is ever freed, so
// the hugepage cache cannot satisfy the request).
void BM_MmapGrowth(benchmark::State& state) {
  Allocator alloc(BenchConfig());
  uint64_t allocated = 0;
  for (auto _ : state) {
    uintptr_t q = alloc.Allocate(8 << 20, 0, 0);
    benchmark::DoNotOptimize(q);
    allocated += 8 << 20;
    if (allocated > (size_t{24} << 30)) {
      state.SkipWithError("arena budget exhausted");
      break;
    }
  }
  state.SetLabel("paper: >>137 ns (simulated cost: " +
                 std::to_string(BenchConfig().costs.mmap_ns) + " ns)");
}

BENCHMARK(BM_CpuCacheHit);
BENCHMARK(BM_TransferCacheRoundTrip);
BENCHMARK(BM_CentralFreeListRoundTrip);
BENCHMARK(BM_PageHeap);
BENCHMARK(BM_MmapGrowth)->Iterations(2000);

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects unknown flags, so the shared wsc flags are
  // parsed first and stripped from argv before Initialize sees them.
  wsc::bench::ParseBenchFlags(argc, argv);
  wsc::bench::StripBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Host-measured latencies aside, emit the standard machine-readable
  // lines from a small allocator exercise that touches every tier.
  wsc::bench::BenchTimer timer("fig04_alloc_latency");
  Allocator alloc(BenchConfig());
  wsc::trace::FlightRecorder recorder(wsc::bench::kBenchTraceRingEvents);
  if (!wsc::bench::g_trace_path.empty()) alloc.SetFlightRecorder(&recorder);
  const uint64_t iters = wsc::bench::BenchMaxRequests(20000);
  std::vector<uintptr_t> live;
  for (uint64_t i = 0; i < iters; ++i) {
    size_t size = 16 << (i % 8);
    if (i % 100 == 99) size = 2 << 20;  // page-heap path
    live.push_back(alloc.Allocate(size, static_cast<int>(i % 2),
                                  static_cast<wsc::SimTime>(i)));
    if (live.size() > 512) {
      alloc.Free(live.front(), static_cast<int>(i % 2),
                 static_cast<wsc::SimTime>(i));
      live.erase(live.begin());
    }
    if (i % 5000 == 0) alloc.Maintain(static_cast<wsc::SimTime>(i));
  }
  for (uintptr_t p : live) alloc.Free(p, 0, 0);
  timer.Report(iters);
  wsc::bench::ReportTelemetry(
      timer.bench(),
      wsc::tcmalloc::MallocExtension(&alloc).GetTelemetrySnapshot());
  if (!wsc::bench::g_trace_path.empty() ||
      !wsc::bench::g_profile_path.empty()) {
    wsc::bench::ReportTraceAndProfile({{0, 0, recorder.Drain()}},
                                      alloc.CollectHeapProfile());
  }
  return 0;
}
