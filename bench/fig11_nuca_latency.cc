// Fig. 11: cache-to-cache transfer latency on a chiplet platform with a
// heterogeneous cache topology (measured with Intel MLC in the paper).
//
// Paper: inter-cache-domain latency is 2.07x the intra-cache-domain
// latency, motivating NUCA-aware transfer caches.

#include <cstdio>

#include "bench/bench_util.h"
#include "hw/latency_model.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 11: core-to-core transfer latency (chiplet platform)");
  bench::BenchTimer timer("fig11_nuca_latency");

  TablePrinter table({"platform", "intra-domain ns", "inter-domain ns",
                      "inter-socket ns", "inter/intra ratio"});
  for (auto gen : hw::AllPlatformGenerations()) {
    hw::CpuTopology topo(hw::PlatformSpecFor(gen));
    hw::CoreToCoreLatency lat = hw::MeasureCoreToCore(topo);
    table.AddRow({topo.spec().name, FormatDouble(lat.intra_domain_ns, 1),
                  FormatDouble(lat.inter_domain_ns, 1),
                  FormatDouble(lat.inter_socket_ns, 1),
                  lat.inter_domain_ns > 0
                      ? FormatDouble(lat.InterToIntraRatio(), 2)
                      : "n/a"});
  }
  table.Print();

  hw::CpuTopology chiplet(
      hw::PlatformSpecFor(hw::PlatformGeneration::kGenE));
  hw::CoreToCoreLatency lat = hw::MeasureCoreToCore(chiplet);
  bench::PaperVsMeasured("inter-domain / intra-domain latency", "2.07x",
                         FormatDouble(lat.InterToIntraRatio(), 2) + "x");
  std::printf(
      "\nshape check: sharing across LLC domains costs ~2x a local\n"
      "transfer; allocators should keep freed objects domain-local.\n");
  // Latency-model-only bench: no simulated request traffic.
  timer.Report(0);
  return 0;
}
