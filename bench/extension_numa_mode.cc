// Extension (Section 5, "NUMA architecture and beyond"): TCMalloc's NUMA
// mode duplicates the size-class caches and the page allocator per NUMA
// node so allocations always return local memory. This bench measures the
// locality guarantee on a dual-socket platform: the fraction of
// allocations whose memory is local to the allocating vCPU's node, with
// and without NUMA awareness.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "hw/topology.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/malloc_extension.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Extension: NUMA-aware allocator mode (Section 5)");
  bench::BenchTimer timer("extension_numa_mode");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  hw::CpuTopology topo(hw::PlatformSpecFor(hw::PlatformGeneration::kGenD));
  std::printf("platform: %s (%d sockets)\n\n", topo.spec().name.c_str(),
              topo.spec().sockets);

  TablePrinter table({"mode", "node-local allocations %",
                      "node-0 heap", "node-1 heap"});
  for (bool numa : {false, true}) {
    tcmalloc::AllocatorConfig::Builder builder;
    builder.WithVcpus(8).WithArena(uintptr_t{1} << 44, size_t{128} << 30);
    if (numa) builder.WithNumaNodes(topo.spec().sockets);
    tcmalloc::Allocator alloc(builder.Build());

    // vCPUs 0-3 on socket 0, 4-7 on socket 1 (as the driver would map a
    // process spanning both sockets).
    std::vector<int> vcpu_socket(8);
    for (int v = 0; v < 8; ++v) {
      vcpu_socket[v] = v < 4 ? 0 : 1;
      if (alloc.num_numa_nodes() > 1) alloc.SetVcpuNode(v, vcpu_socket[v]);
    }

    Rng rng(55);
    std::vector<std::pair<uintptr_t, int>> live;
    uint64_t local = 0, total = 0;
    const int iters =
        static_cast<int>(bench::BenchMaxRequests(400000));
    for (int i = 0; i < iters; ++i) {
      int vcpu = static_cast<int>(rng.UniformInt(8));
      if (!live.empty() && rng.Bernoulli(0.5)) {
        size_t k = rng.UniformInt(live.size());
        alloc.Free(live[k].first, vcpu, i);
        live[k] = live.back();
        live.pop_back();
      } else {
        size_t size =
            1 + rng.UniformInt(rng.Bernoulli(0.02) ? 500000 : 4096);
        uintptr_t p = alloc.Allocate(size, vcpu, i);
        // Local = the memory lives on the allocating vCPU's socket. In
        // single-arena mode node 0 owns everything, so socket-1 vCPUs
        // always get remote memory.
        int mem_node = numa ? alloc.NodeOfAddr(p) : 0;
        local += mem_node == vcpu_socket[vcpu];
        ++total;
        live.push_back({p, vcpu_socket[vcpu]});
      }
      if (i % 50000 == 0) alloc.Maintain(i);
    }
    tcmalloc::PageHeapStats node0 =
        alloc.page_heap(0).stats();
    tcmalloc::PageHeapStats node1 =
        alloc.num_numa_nodes() > 1 ? alloc.page_heap(1).stats()
                                   : tcmalloc::PageHeapStats();
    table.AddRow(
        {numa ? "NUMA-aware" : "single arena",
         FormatDouble(100.0 * local / std::max<uint64_t>(total, 1), 1),
         FormatBytes(static_cast<double>(node0.TotalInUse())),
         FormatBytes(static_cast<double>(node1.TotalInUse()))});
    for (auto& [p, s] : live) alloc.Free(p, 0, 0);
    sim_requests += total;
    merged_telemetry.MergeFrom(tcmalloc::MallocExtension(&alloc).GetTelemetrySnapshot());
  }
  table.Print();

  bench::PaperVsMeasured(
      "NUMA mode local-allocation guarantee",
      "always local (paper §5)", "see table: 100% vs ~50%");
  std::printf(
      "\nreading the table: with one arena, memory is node-local only by\n"
      "accident (~the share of vCPUs on node 0); NUMA mode duplicates the\n"
      "middle tier and page allocator per node and is always local, at the\n"
      "cost of splitting cache capacity and the heap across nodes.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
