// Table 2 + Fig. 17: fleet workloads and benchmarks with the
// lifetime-aware hugepage filler (span capacity threshold C = 16).
//
// Paper: fleet +1.02% throughput, -0.82% memory, -6.75% CPI, dTLB load
// walk 9.16% -> 6.22% of cycles; hugepage coverage 54.4% -> 56.2%; dTLB
// miss rate -8.1%. Top-5 apps +0.38%..+6.29% throughput; benchmarks
// +1.05%..+3.91% throughput with -1.29%..-7.02% memory (incl. Redis).

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Table 2 / Fig. 17: lifetime-aware hugepage filler");
  bench::BenchTimer timer("table2_lifetime_filler");

  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithLifetimeAwareFiller().Build();

  fleet::AbResult ab =
      fleet::RunFleetAb(bench::DefaultFleet(), control, experiment, 1701);

  TablePrinter table({"application", "throughput", "memory", "CPI",
                      "dTLB walk% before", "dTLB walk% after"});
  auto add = [&table](const fleet::AbDelta& delta) {
    table.AddRow({delta.label,
                  FormatSignedPercent(delta.ThroughputChangePct()),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.CpiChangePct()),
                  FormatDouble(100.0 * delta.control.DtlbWalkFraction(), 2),
                  FormatDouble(100.0 * delta.experiment.DtlbWalkFraction(),
                               2)});
  };
  add(ab.fleet);
  for (const auto& delta : ab.per_app) {
    if (delta.control.processes > 0) add(delta);
  }
  auto benchmarks = workload::BenchmarkProfiles();
  for (size_t i = 0; i < benchmarks.size(); ++i) {
    fleet::AbDelta delta =
        bench::BenchmarkAb(benchmarks[i], control, experiment, 1710 + i);
    add(delta);
  }
  table.Print();

  PrintBanner("Fig. 17: hugepage coverage and dTLB");
  bench::PaperVsMeasured(
      "hugepage coverage (baseline -> lifetime-aware)", "54.4% -> 56.2%",
      FormatDouble(100.0 * ab.fleet.control.HugepageCoverage(), 1) + "% -> " +
          FormatDouble(100.0 * ab.fleet.experiment.HugepageCoverage(), 1) +
          "%");
  bench::PaperVsMeasured(
      "fleet dTLB walk cycles", "9.16% -> 6.22%",
      FormatDouble(100.0 * ab.fleet.control.DtlbWalkFraction(), 2) +
          "% -> " +
          FormatDouble(100.0 * ab.fleet.experiment.DtlbWalkFraction(), 2) +
          "%");
  bench::PaperVsMeasured(
      "fleet throughput / memory / CPI", "+1.02% / -0.82% / -6.75%",
      FormatSignedPercent(ab.fleet.ThroughputChangePct()) + " / " +
          FormatSignedPercent(ab.fleet.MemoryChangePct()) + " / " +
          FormatSignedPercent(ab.fleet.CpiChangePct()));
  std::printf(
      "\nshape check: separating short- and long-lived spans onto\n"
      "dedicated hugepages keeps more of the heap hugepage-backed and\n"
      "reduces page-walk stalls.\n");
  timer.Report(bench::TotalRequests(ab));
  bench::ReportTelemetry(timer.bench(), ab);
  return 0;
}
