// Fig. 7: CDF of allocated objects in WSC applications, by object count
// and by allocated memory.
//
// Paper: objects < 1 KiB are 98% of allocated objects but only 28% of
// allocated memory; objects > 8 KiB account for ~50% of memory; objects
// above the 256 KiB size-class threshold account for 22% of memory.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 7: CDF of allocated objects (count and bytes)");
  bench::BenchTimer timer("fig07_object_cdf");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  // Aggregate allocation-size histograms across the production profiles,
  // weighted by their allocation volume (one machine run each).
  LogHistogram count_hist;
  LogHistogram bytes_hist;
  uint64_t seed = 700;
  std::vector<workload::WorkloadSpec> specs = workload::TopFiveProfiles();
  for (const auto& s : workload::BenchmarkProfiles()) specs.push_back(s);
  for (const auto& spec : specs) {
    fleet::Machine machine(
        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), {spec},
        tcmalloc::AllocatorConfig(), seed++);
    machine.Run(bench::BenchDuration(Seconds(10)),
                bench::BenchMaxRequests(50000));
    count_hist.Merge(machine.allocator(0).alloc_count_hist());
    bytes_hist.Merge(machine.allocator(0).alloc_bytes_hist());
    sim_requests += machine.results()[0].driver.requests;
    merged_telemetry.MergeFrom(machine.results()[0].telemetry);
  }

  std::printf("object-size CDF (upper bound -> cumulative %%):\n");
  TablePrinter table({"size <=", "% of objects", "% of memory"});
  for (double bound : {32.0, 256.0, 1024.0, 8192.0, 65536.0, 262144.0,
                       1048576.0, 33554432.0}) {
    table.AddRow({FormatBytes(bound),
                  FormatDouble(100.0 * count_hist.FractionBelow(bound), 1),
                  FormatDouble(100.0 * bytes_hist.FractionBelow(bound), 1)});
  }
  table.Print();

  bench::PaperVsMeasured(
      "objects < 1 KiB, % of objects", "98%",
      FormatDouble(100.0 * count_hist.FractionBelow(1024), 1) + "%");
  bench::PaperVsMeasured(
      "objects < 1 KiB, % of memory", "28%",
      FormatDouble(100.0 * bytes_hist.FractionBelow(1024), 1) + "%");
  bench::PaperVsMeasured(
      "objects > 8 KiB, % of memory", "~50%",
      FormatDouble(100.0 * bytes_hist.FractionAtLeast(8192), 1) + "%");
  bench::PaperVsMeasured(
      "objects > 256 KiB (bypass caches), % of memory", "22%",
      FormatDouble(100.0 * bytes_hist.FractionAtLeast(262144), 1) + "%");
  std::printf(
      "\nshape check: small objects dominate counts while large objects\n"
      "dominate bytes — the reason TCMalloc biases cache capacity towards\n"
      "small size classes.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
