// Table 1: fleet-wide experiments and dedicated-server benchmarks for
// NUCA-aware transfer caches.
//
// Paper: fleet +0.32% throughput, +0.10% memory, -0.57% CPI, LLC load MPKI
// 2.52 -> 2.41; top-5 apps +0.28%..+1.72% throughput; benchmarks
// +1.37%..+3.80% throughput with +0.08%..+0.16% memory (Redis omitted:
// single-threaded).

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Table 1: NUCA-aware transfer caches");
  bench::BenchTimer timer("table1_nuca_transfer_cache");

  tcmalloc::AllocatorConfig control;
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::Builder().WithNucaTransferCache().Build();

  // The paper's experiment targets chiplet platforms.
  fleet::AbResult ab =
      fleet::RunFleetAb(bench::ChipletFleet(), control, experiment, 1101);

  TablePrinter table({"application", "throughput", "memory", "CPI",
                      "MPKI before", "MPKI after"});
  auto add = [&table](const fleet::AbDelta& delta) {
    table.AddRow({delta.label,
                  FormatSignedPercent(delta.ThroughputChangePct()),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.CpiChangePct()),
                  FormatDouble(delta.control.LlcMpki(), 2),
                  FormatDouble(delta.experiment.LlcMpki(), 2)});
  };
  add(ab.fleet);
  for (const auto& delta : ab.per_app) {
    if (delta.control.processes > 0) add(delta);
  }

  auto benchmarks = workload::BenchmarkProfiles();
  for (size_t i = 0; i < benchmarks.size(); ++i) {
    if (benchmarks[i].single_threaded()) {
      table.AddRow({benchmarks[i].name, "n/a", "n/a", "n/a", "n/a", "n/a"});
      continue;  // Redis: single-threaded, no multi-CPU object flow
    }
    fleet::AbDelta delta =
        bench::BenchmarkAb(benchmarks[i], control, experiment, 1110 + i);
    add(delta);
  }
  table.Print();

  bench::PaperVsMeasured(
      "fleet throughput / memory / CPI", "+0.32% / +0.10% / -0.57%",
      FormatSignedPercent(ab.fleet.ThroughputChangePct()) + " / " +
          FormatSignedPercent(ab.fleet.MemoryChangePct()) + " / " +
          FormatSignedPercent(ab.fleet.CpiChangePct()));
  bench::PaperVsMeasured(
      "fleet LLC MPKI", "2.52 -> 2.41 (-4.37%)",
      FormatDouble(ab.fleet.control.LlcMpki(), 2) + " -> " +
          FormatDouble(ab.fleet.experiment.LlcMpki(), 2));
  std::printf(
      "\nshape check: domain-local transfer caches cut LLC misses and lift\n"
      "throughput for a small memory cost from the extra caching layer.\n");
  timer.Report(bench::TotalRequests(ab));
  bench::ReportTelemetry(timer.bench(), ab);
  return 0;
}
