// Fig. MT: allocation-throughput scaling under real concurrency.
//
// Every other bench drives the deterministic discrete-event simulator;
// this one (by default --exec=real-threads) drives the real-concurrency
// allocator in tcmalloc/real_threads.h with a pool of OS threads and
// sweeps 1 -> --mt-threads, reporting per-point throughput, speedup over
// the single-thread point, and a hardware-normalized scaling efficiency:
//
//   efficiency(N) = (ops_per_sec(N) / ops_per_sec(1)) / min(N, cores)
//
// Perfect scaling is 1.0 up to the core count; oversubscribed points
// (N > cores) are normalized by the core count, so a 1-core CI box still
// produces a meaningful, gateable number (~ops(N)/ops(1)) instead of a
// vacuously failing 1/N. The final BENCH_JSON throughput line carries the
// max-thread efficiency; bench/baselines/fig_mt_scaling.json gates it
// (scaling_efficiency is higher-is-better in check_bench_regression.py).
//
// The workload is a cross-thread alloc/free storm: a lognormal-ish size
// mix over the small classes plus rare page-heap-sized requests, a
// per-thread live window with randomized lifetimes, and a lock-free SPSC
// handoff ring to the neighbor thread so a steady fraction of frees are
// remote — the pattern that makes unsharded middle ends collapse.
//
// --exec=simulated runs the same storm shape through the simulated
// Allocator (the oracle): single OS thread, virtual threads round-robin,
// full REQUIRED_TIERS telemetry. Useful for apples-to-apples footprint
// comparisons; its "scaling" is the simulator's, not the machine's.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "tcmalloc/allocator.h"
#include "tcmalloc/real_threads.h"

namespace {

using wsc::Rng;
using wsc::tcmalloc::AllocatorConfig;
using wsc::tcmalloc::RealThreadCache;
using wsc::tcmalloc::RealThreadsAllocator;

constexpr char kBench[] = "fig_mt_scaling";

// Live-window objects per thread; randomized replacement gives mixed
// lifetimes within and across size classes.
constexpr size_t kWindow = 512;

// One in kHandoffPeriod allocations is freed by the neighbor thread.
constexpr uint64_t kHandoffPeriod = 16;

// Each sweep point reports its best-of-kRepetitions throughput: wall
// clock on shared CI boxes is bursty, and the max is the standard
// scheduler-noise filter for scaling sweeps. Op counts are per run, so
// the reported sim_requests stays deterministic.
constexpr int kRepetitions = 3;

AllocatorConfig StormConfig() {
  return AllocatorConfig::Builder()
      .WithVcpus(8)
      .WithArena(uintptr_t{1} << 44, size_t{64} << 30)
      .Build();
}

// Cheap deterministic size mix: mostly sub-KiB, a mid and a large small
// class band, and ~0.4% page-heap-sized requests. Sampling must cost far
// less than the allocator or the sweep measures the RNG.
uint32_t SampleSize(Rng& rng) {
  uint64_t r = rng.Next();
  uint32_t p = static_cast<uint32_t>(r % 1000);
  uint32_t v = static_cast<uint32_t>(r >> 10);
  if (p < 700) return 16 + v % 112;                   // 16 B .. 128 B
  if (p < 920) return 256 + v % 1792;                 // 256 B .. 2 KiB
  if (p < 996) return 4096 + v % 28672;               // 4 KiB .. 32 KiB
  return 300 * 1024 + v % (200 * 1024);               // page-heap sized
}

// Lock-free SPSC ring carrying (addr, size) from thread i to thread
// (i+1) % N. Producer and consumer indices live on their own cache lines.
struct HandoffRing {
  struct Entry {
    uintptr_t addr = 0;
    uint32_t size = 0;
  };
  static constexpr uint32_t kCap = 1024;  // power of two

  alignas(64) std::atomic<uint32_t> tail{0};  // written by producer
  alignas(64) std::atomic<uint32_t> head{0};  // written by consumer
  std::array<Entry, kCap> slots;

  bool Push(Entry e) {
    uint32_t t = tail.load(std::memory_order_relaxed);
    if (t - head.load(std::memory_order_acquire) == kCap) return false;
    slots[t & (kCap - 1)] = e;
    tail.store(t + 1, std::memory_order_release);
    return true;
  }
  bool Pop(Entry* e) {
    uint32_t h = head.load(std::memory_order_relaxed);
    if (h == tail.load(std::memory_order_acquire)) return false;
    *e = slots[h & (kCap - 1)];
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

void StormWorker(RealThreadsAllocator& alloc, int tid, int nthreads,
                 uint64_t ops, std::vector<HandoffRing>& rings,
                 wsc::prof::SelfProfiler* profiler) {
  // Each OS thread samples into its own profiler (single-writer, like the
  // per-thread cache); profiles merge after join. Null when --selfprof is
  // off: the scopes below cost one TLS load + branch each.
  wsc::prof::ScopedInstall install(profiler);
  WSC_PROF_SCOPE("mt/StormWorker");
  RealThreadCache* tc = alloc.RegisterThread();
  Rng rng(0x5ca11ab1eULL ^ (0x9e3779b97f4a7c15ULL * (tid + 1)));
  std::vector<std::pair<uintptr_t, uint32_t>> window;
  window.reserve(kWindow);
  HandoffRing* out = nthreads > 1 ? &rings[tid] : nullptr;
  HandoffRing* in =
      nthreads > 1 ? &rings[(tid + nthreads - 1) % nthreads] : nullptr;

  for (uint64_t op = 0; op < ops; ++op) {
    uint32_t size = SampleSize(rng);
    uintptr_t addr = alloc.Allocate(tc, size);
    if (out != nullptr && op % kHandoffPeriod == 0) {
      if (!out->Push({addr, size})) alloc.Free(tc, addr, size);
    } else if (window.size() < kWindow) {
      window.emplace_back(addr, size);
    } else {
      size_t slot = rng.UniformInt(kWindow);
      std::pair<uintptr_t, uint32_t> old = window[slot];
      window[slot] = {addr, size};
      alloc.Free(tc, old.first, old.second);
    }
    if (in != nullptr && (op & 7) == 0) {
      HandoffRing::Entry e;
      for (int i = 0; i < 4 && in->Pop(&e); ++i) {
        alloc.Free(tc, e.addr, e.size);
      }
    }
  }
  for (const auto& [addr, size] : window) alloc.Free(tc, addr, size);
}

struct SweepPoint {
  int threads = 0;
  uint64_t ops = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
};

// Runs one sweep point against a fresh allocator; returns the quiescent
// telemetry so the last point's contention profile can be reported.
SweepPoint RunRealPoint(int nthreads, uint64_t ops_per_thread,
                        wsc::telemetry::Snapshot* telemetry) {
  AllocatorConfig config = StormConfig();
  RealThreadsAllocator alloc(config, nthreads);
  std::vector<HandoffRing> rings(nthreads);

  std::vector<std::unique_ptr<wsc::prof::SelfProfiler>> profilers;
  if (!wsc::bench::g_selfprof_path.empty()) {
    for (int tid = 0; tid < nthreads; ++tid) {
      profilers.push_back(std::make_unique<wsc::prof::SelfProfiler>(
          wsc::bench::kBenchSelfProfInterval));
    }
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  for (int tid = 0; tid < nthreads; ++tid) {
    pool.emplace_back(StormWorker, std::ref(alloc), tid, nthreads,
                      ops_per_thread, std::ref(rings),
                      profilers.empty() ? nullptr : profilers[tid].get());
  }
  for (std::thread& t : pool) t.join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  // Drain handoff entries that were in flight when their consumer
  // finished, so the telemetry shows a fully-freed heap.
  RealThreadCache* main_tc = alloc.RegisterThread();
  for (HandoffRing& ring : rings) {
    HandoffRing::Entry e;
    while (ring.Pop(&e)) alloc.Free(main_tc, e.addr, e.size);
  }

  // Merge the per-thread profiles (post-join, like the telemetry
  // snapshot). Real-threads profiles are not bit-deterministic — work
  // stealing and ring occupancy race — so the CI flamediff budget for
  // this bench is looser than the simulated ones.
  wsc::prof::FoldedProfile self_profile;
  for (const auto& profiler : profilers) {
    self_profile.MergeFrom(profiler->Folded());
  }
  wsc::bench::ReportSelfProfile(self_profile);

  *telemetry = alloc.TelemetrySnapshot();
  SweepPoint point;
  point.threads = nthreads;
  point.ops = ops_per_thread * static_cast<uint64_t>(nthreads);
  point.wall_seconds = wall;
  point.ops_per_sec =
      wall > 0 ? static_cast<double>(point.ops) / wall : 0.0;
  return point;
}

// The oracle arm: same storm shape, virtual threads round-robin on the
// deterministic simulator. One OS thread; "now" advances a fixed 100 ns
// per operation.
SweepPoint RunSimulatedPoint(int nthreads, uint64_t ops_per_thread,
                             wsc::telemetry::Snapshot* telemetry) {
  AllocatorConfig config = StormConfig();
  wsc::tcmalloc::Allocator alloc(config);
  struct VThread {
    Rng rng;
    std::vector<std::pair<uintptr_t, uint32_t>> window;
    explicit VThread(int tid)
        : rng(0x5ca11ab1eULL ^ (0x9e3779b97f4a7c15ULL * (tid + 1))) {}
  };
  std::vector<VThread> vthreads;
  vthreads.reserve(nthreads);
  for (int tid = 0; tid < nthreads; ++tid) vthreads.emplace_back(tid);

  // One profiler for the whole point: the oracle arm is single-threaded
  // and deterministic, so this profile is byte-stable run to run.
  std::unique_ptr<wsc::prof::SelfProfiler> profiler;
  if (!wsc::bench::g_selfprof_path.empty()) {
    profiler = std::make_unique<wsc::prof::SelfProfiler>(
        wsc::bench::kBenchSelfProfInterval);
  }
  wsc::prof::ScopedInstall install(profiler.get());
  WSC_PROF_SCOPE("mt/SimLoop");

  auto start = std::chrono::steady_clock::now();
  wsc::SimTime now = 0;
  for (uint64_t op = 0; op < ops_per_thread; ++op) {
    for (int tid = 0; tid < nthreads; ++tid) {
      VThread& vt = vthreads[tid];
      int vcpu = tid % config.num_vcpus;
      uint32_t size = SampleSize(vt.rng);
      uintptr_t addr = alloc.Allocate(size, vcpu, now);
      now += 100;
      if (vt.window.size() < kWindow) {
        vt.window.emplace_back(addr, size);
      } else {
        size_t slot = vt.rng.UniformInt(kWindow);
        // Cross-thread free: the neighbor's vcpu frees the evicted object.
        alloc.Free(vt.window[slot].first, (vcpu + 1) % config.num_vcpus,
                   now);
        now += 100;
        vt.window[slot] = {addr, size};
      }
    }
  }
  for (int tid = 0; tid < nthreads; ++tid) {
    for (const auto& [addr, size] : vthreads[tid].window) {
      alloc.Free(addr, tid % config.num_vcpus, now);
      now += 100;
    }
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  if (profiler != nullptr) {
    wsc::bench::ReportSelfProfile(profiler->Folded());
  }

  *telemetry = alloc.TelemetrySnapshot();
  SweepPoint point;
  point.threads = nthreads;
  point.ops = ops_per_thread * static_cast<uint64_t>(nthreads);
  point.wall_seconds = wall;
  point.ops_per_sec =
      wall > 0 ? static_cast<double>(point.ops) / wall : 0.0;
  return point;
}

void ReportTelemetryLine(const wsc::telemetry::Snapshot& snapshot,
                         const std::string& exec) {
  wsc::bench::BenchJson line(kBench, "telemetry");
  line.Field("exec", exec);
  line.Field("schema_telemetry",
             static_cast<uint64_t>(snapshot.schema_version));
  line.Metrics(snapshot);
  line.Emit();
  wsc::bench::g_statsz_accum.MergeFrom(snapshot);
  if (!wsc::bench::g_statsz_path.empty()) {
    wsc::telemetry::WriteStatszFile(wsc::bench::g_statsz_path,
                                    wsc::bench::g_statsz_accum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  wsc::bench::ParseBenchFlags(argc, argv);
  const std::string exec =
      wsc::bench::g_bench_exec.empty() ? "real-threads"
                                       : wsc::bench::g_bench_exec;
  if (exec != "real-threads" && exec != "simulated") {
    std::fprintf(stderr, "fig_mt_scaling: unknown --exec=%s\n",
                 exec.c_str());
    return 2;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      wsc::bench::g_bench_mt_threads > 0
          ? wsc::bench::g_bench_mt_threads
          : static_cast<int>(std::min(8u, std::max(2u, hw)));
  const uint64_t ops_per_thread = wsc::bench::BenchMaxRequests(200000);

  std::vector<int> sweep;
  for (int n = 1; n < max_threads; n *= 2) sweep.push_back(n);
  sweep.push_back(max_threads);

  std::printf("Allocation throughput scaling, --exec=%s "
              "(%d hardware thread(s))\n",
              exec.c_str(), hw);

  std::vector<SweepPoint> points;
  wsc::telemetry::Snapshot telemetry;
  uint64_t total_ops = 0;
  double total_wall = 0;
  for (int n : sweep) {
    SweepPoint best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      SweepPoint point = exec == "real-threads"
                             ? RunRealPoint(n, ops_per_thread, &telemetry)
                             : RunSimulatedPoint(n, ops_per_thread,
                                                 &telemetry);
      if (rep == 0 || point.ops_per_sec > best.ops_per_sec) best = point;
    }
    points.push_back(best);
    total_ops += best.ops;
    total_wall += best.wall_seconds;
  }

  double base = points.front().ops_per_sec;
  for (const SweepPoint& point : points) {
    double speedup = base > 0 ? point.ops_per_sec / base : 0.0;
    double efficiency =
        speedup / std::min<double>(point.threads, static_cast<double>(hw));
    std::printf("  %2d thread(s): %11.0f ops/s  speedup %5.2fx  "
                "efficiency %.3f\n",
                point.threads, point.ops_per_sec, speedup, efficiency);
    wsc::bench::BenchJson(kBench, "throughput")
        .Field("exec", exec)
        .Field("mt_threads", static_cast<uint64_t>(point.threads))
        .Field("sim_requests", point.ops)
        .Field("wall_seconds", point.wall_seconds)
        .Field("sim_requests_per_sec", point.ops_per_sec)
        .Field("speedup", speedup)
        .Field("scaling_efficiency", efficiency)
        .Emit();
  }

  // Summary line last: check_bench_regression.py keys sim_requests and
  // scaling_efficiency off the final throughput line. sim_requests is the
  // deterministic sweep-wide op count; efficiency is the max-thread
  // point's.
  const SweepPoint& top = points.back();
  double top_speedup = base > 0 ? top.ops_per_sec / base : 0.0;
  double top_efficiency =
      top_speedup / std::min<double>(top.threads, static_cast<double>(hw));
  wsc::bench::BenchJson(kBench, "throughput")
      .Field("exec", exec)
      .Field("mt_threads", static_cast<uint64_t>(top.threads))
      .Field("hw_concurrency", static_cast<uint64_t>(hw))
      .Field("sim_requests", total_ops)
      .Field("wall_seconds", total_wall)
      .Field("sim_requests_per_sec",
             total_wall > 0 ? static_cast<double>(total_ops) / total_wall
                            : 0.0)
      .Field("speedup", top_speedup)
      .Field("scaling_efficiency", top_efficiency)
      .Emit();

  ReportTelemetryLine(telemetry, exec);

  if (exec == "real-threads") {
    const wsc::telemetry::MetricSample* stalls =
        telemetry.Find("contention", "refill_stalls");
    const wsc::telemetry::MetricSample* steals =
        telemetry.Find("contention", "work_steals");
    std::printf("  contention @ %d thread(s): refill stalls %llu, "
                "work steals %llu\n",
                top.threads,
                static_cast<unsigned long long>(
                    stalls != nullptr ? stalls->counter : 0),
                static_cast<unsigned long long>(
                    steals != nullptr ? steals->counter : 0));
  }
  return 0;
}
