// Fig. 8: distribution of object lifetime by object size, weighted by
// sampled allocations — fleet vs SPEC CPU2006.
//
// Paper: fleet lifetimes are extremely diverse (within one size range,
// from < 1 ms to > 7 days); ~46% of objects < 1 KiB live under 1 ms; large
// objects skew long-lived. SPEC benchmarks show a bimodal
// program-lifetime-or-instant pattern, making them unsuitable for
// allocator studies. (Simulation timescales are compressed: virtual
// seconds stand in for production hours; the *relative* structure is the
// reproduction target.)

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"
#include "tcmalloc/malloc_extension.h"
#include "tcmalloc/sampler.h"

using namespace wsc;

namespace {

uint64_t g_sim_requests = 0;
telemetry::Snapshot g_telemetry;

tcmalloc::LifetimeProfile CollectProfile(
    const std::vector<workload::WorkloadSpec>& specs, uint64_t seed) {
  tcmalloc::LifetimeProfile profile;
  for (const auto& spec : specs) {
    fleet::Machine machine(
        hw::PlatformSpecFor(hw::PlatformGeneration::kGenD), {spec},
        tcmalloc::AllocatorConfig(), seed++, /*pressure_events=*/{},
        wsc::bench::g_trace_path.empty()
            ? 0
            : wsc::bench::kBenchTraceRingEvents);
    machine.Run(wsc::bench::BenchDuration(Seconds(12)),
                wsc::bench::BenchMaxRequests(60000));
    machine.driver(0).Drain();  // finalize censored lifetimes
    // Read the sampler through the public MallocExtension surface, like a
    // production profiler would (not via allocator internals).
    tcmalloc::MallocExtension extension(&machine.allocator(0));
    profile.Merge(extension.GetLifetimeProfile());
    g_sim_requests += machine.results()[0].driver.requests;
    g_telemetry.MergeFrom(machine.results()[0].telemetry);
    wsc::bench::ReportTraceAndProfile(machine.results());
  }
  return profile;
}

void PrintProfile(const char* label,
                  const tcmalloc::LifetimeProfile& profile) {
  std::printf("\n%s (sampled allocations: %llu)\n", label,
              static_cast<unsigned long long>(profile.all_lifetimes.count()));
  TablePrinter table({"object size bucket", "samples", "p25 life", "p50 life",
                      "p99 life", "% < 1ms"});
  for (int b = 0; b < tcmalloc::LifetimeProfile::kSizeBuckets; ++b) {
    const LogHistogram& h = profile.lifetime_by_size[b];
    if (h.count() < 5) continue;
    auto fmt_ns = [](double ns) {
      if (ns < 1e3) return FormatDouble(ns, 0) + "ns";
      if (ns < 1e6) return FormatDouble(ns / 1e3, 1) + "us";
      if (ns < 1e9) return FormatDouble(ns / 1e6, 1) + "ms";
      return FormatDouble(ns / 1e9, 2) + "s";
    };
    table.AddRow(
        {"<= " + FormatBytes(std::pow(2.0, b)), std::to_string(h.count()),
         fmt_ns(h.Quantile(0.25)), fmt_ns(h.Quantile(0.5)),
         fmt_ns(h.Quantile(0.99)),
         FormatDouble(100.0 * h.FractionBelow(1e6), 1)});
  }
  table.Print();
}

// Fraction of sampled objects below `size_limit` bytes whose lifetime is
// under `ns`.
double SmallShortFraction(const tcmalloc::LifetimeProfile& profile,
                          size_t size_limit, double ns) {
  double below = 0, total = 0;
  for (int b = 0; b < tcmalloc::LifetimeProfile::kSizeBuckets; ++b) {
    if ((size_t{1} << b) > size_limit) break;
    const LogHistogram& h = profile.lifetime_by_size[b];
    below += h.FractionBelow(ns) * h.total_weight();
    total += h.total_weight();
  }
  return total > 0 ? below / total : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Fig. 8: object lifetime x size distribution");
  bench::BenchTimer timer("fig08_lifetimes");

  std::vector<workload::WorkloadSpec> fleet_specs =
      workload::TopFiveProfiles();
  for (const auto& s : workload::BenchmarkProfiles()) {
    fleet_specs.push_back(s);
  }
  tcmalloc::LifetimeProfile fleet = CollectProfile(fleet_specs, 800);
  PrintProfile("fleet workloads", fleet);

  tcmalloc::LifetimeProfile spec_profile =
      CollectProfile({workload::SpecLikeProfile()}, 900);
  PrintProfile("SPEC CPU2006-like", spec_profile);

  std::printf("\n");
  bench::PaperVsMeasured(
      "small (<1 KiB) objects living < 1 ms", "46%",
      FormatDouble(100.0 * SmallShortFraction(fleet, 1024, 1e6), 1) + "%");
  double spread_fleet = fleet.all_lifetimes.Quantile(0.99) /
                        std::max(1.0, fleet.all_lifetimes.Quantile(0.01));
  double spread_spec =
      spec_profile.all_lifetimes.Quantile(0.99) /
      std::max(1.0, spec_profile.all_lifetimes.Quantile(0.01));
  bench::PaperVsMeasured("lifetime diversity (p99/p01), fleet vs SPEC",
                         "fleet >> SPEC-bimodal",
                         FormatDouble(spread_fleet, 0) + "x vs " +
                             FormatDouble(spread_spec, 0) + "x");
  std::printf(
      "\nshape check: fleet lifetimes span many orders of magnitude within\n"
      "each size bucket; the SPEC-like workload is bimodal (instant or\n"
      "program lifetime), echoing the paper's argument that SPEC is\n"
      "unsuitable for allocator evaluation.\n");
  timer.Report(g_sim_requests);
  bench::ReportTelemetry(timer.bench(), g_telemetry);
  return 0;
}
