// Ablation: per-thread vs per-CPU front-end caches.
//
// Section 4.1 (footnote 2): per-CPU caches replaced the original per-
// thread caches because per-thread caches strand memory when threads go
// idle and scale poorly for applications with many threads ("making
// TCMalloc, a thread-caching malloc, a misnomer"). With dense vCPU ids, a
// per-CPU front end needs one cache per *CPU the process runs on*; the
// per-thread front end needs one per thread. This ablation runs the same
// heavily-threaded workload with the front-end keyed per thread (one cache
// slot per possible thread) vs per CPU, and reports the cached-memory
// footprint and miss behavior.

#include <cstdio>

#include "bench/bench_util.h"
#include "fleet/machine.h"

using namespace wsc;

namespace {

workload::WorkloadSpec ManyThreadSpec(int threads) {
  workload::WorkloadSpec spec = bench::PackingStressSpec();
  spec.name = "many-threads";
  spec.min_threads = threads / 8;
  spec.max_threads = threads;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Ablation: per-thread vs per-CPU front-end caches");
  bench::BenchTimer timer("ablation_thread_vs_cpu_caches");
  uint64_t sim_requests = 0;
  telemetry::Snapshot merged_telemetry;

  hw::PlatformSpec platform =
      hw::PlatformSpecFor(hw::PlatformGeneration::kGenC);  // 64 CPUs

  TablePrinter table({"front end", "threads", "caches populated",
                      "cached free memory", "tput (req/cpu-s)"});
  for (int threads : {64, 256}) {
    for (bool per_thread : {false, true}) {
      workload::WorkloadSpec spec = ManyThreadSpec(threads);
      // Per-thread mode: one front-end cache slot per thread, as in the
      // legacy design. Per-CPU mode: the machine model caps the slots at
      // the CPUs the process is scheduled on (dense vCPU ids).
      tcmalloc::AllocatorConfig config =
          tcmalloc::AllocatorConfig::Builder()
              .WithPerThreadFrontEnd(per_thread)
              .Build();
      fleet::Machine machine(platform, {spec}, config, /*seed=*/86);
      machine.Run(bench::BenchDuration(Seconds(12)),
                  bench::BenchMaxRequests(80000));
      const fleet::ProcessResult& r = machine.results()[0];
      sim_requests += r.driver.requests;
      merged_telemetry.MergeFrom(r.telemetry);
      const auto& caches = machine.allocator(0).cpu_caches();
      int populated = 0;
      for (int v = 0; v < caches.num_vcpus(); ++v) {
        if (caches.GetVcpuStats(v).populated) ++populated;
      }
      table.AddRow({per_thread ? "per-thread" : "per-CPU",
                    std::to_string(threads), std::to_string(populated),
                    FormatBytes(static_cast<double>(r.heap.cpu_cache_free)),
                    FormatDouble(r.driver.Throughput(), 0)});
    }
  }
  table.Print();

  std::printf(
      "\nexpected (paper footnote 2): with more threads than CPUs, the\n"
      "per-thread front end populates far more caches and strands more\n"
      "cached memory, while dense per-CPU ids bound the front-end\n"
      "footprint by the CPUs actually in use.\n");
  timer.Report(sim_requests);
  bench::ReportTelemetry(timer.bench(), merged_telemetry);
  return 0;
}
