// Ablation: static vs dynamic per-CPU caches at 3 MiB and 1.5 MiB
// capacity.
//
// Paper (Section 4.1): dynamic resizing improves utilization enough that
// the default capacity can be halved from 3 MiB to 1.5 MiB with no
// performance impact — the halving is where the memory saving comes from,
// and the dynamic scheme is what makes it safe.

#include <cstdio>

#include "bench/bench_util.h"

using namespace wsc;

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  PrintBanner("Ablation: per-CPU cache capacity x sizing policy");
  bench::BenchTimer timer("ablation_cpu_capacity");
  uint64_t sim_requests = 0;

  tcmalloc::AllocatorConfig control;  // static 3 MiB (baseline)
  workload::WorkloadSpec spec = workload::BigtableProfile();

  TablePrinter table({"configuration", "memory vs static-3MiB",
                      "throughput vs static-3MiB"});
  struct Setting {
    const char* label;
    bool dynamic;
    size_t capacity;
  };
  const Setting settings[] = {
      {"static 1.5 MiB", false, 1536 * 1024},
      {"dynamic 3 MiB", true, 3 * 1024 * 1024},
      {"dynamic 1.5 MiB (paper)", true, 1536 * 1024},
      {"dynamic 0.75 MiB", true, 768 * 1024},
  };
  for (const Setting& s : settings) {
    tcmalloc::AllocatorConfig experiment =
        tcmalloc::AllocatorConfig::Builder()
            .WithDynamicCpuCaches(s.dynamic)
            .WithCpuCacheBytes(s.capacity)
            .Build();
    fleet::AbDelta delta =
        bench::BenchmarkAb(spec, control, experiment, 8400);
    sim_requests += static_cast<uint64_t>(delta.control.requests +
                                          delta.experiment.requests);
    bench::ReportTelemetry(std::string("ablation_cpu_capacity/") + s.label,
                           delta);
    table.AddRow({s.label, FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.ThroughputChangePct())});
  }
  table.Print();
  std::printf(
      "\nexpected: halving without dynamic sizing starves hot vCPUs;\n"
      "dynamic sizing at 1.5 MiB keeps throughput while saving memory;\n"
      "shrinking much further starts costing misses.\n");
  timer.Report(sim_requests);
  return 0;
}
