// Traffic-scenario bench: Fig. 3 sketch CDFs under planet-scale load
// shapes.
//
// The paper's fleet numbers average over traffic that is anything but
// stationary (§2): load follows the sun, releases roll across the fleet
// in waves, and co-located neighbors churn caches. This bench points the
// streaming sketch pipeline (StreamCollector only, per the Fig. 3
// methodology — no per-machine data retained) at each named traffic
// scenario in turn: diurnal curves with regional phase shifts, a flash
// crowd on one region, a rolling deploy wave (exercising Machine's arena
// slot recycling), and antagonist co-location.
//
// Every BENCH_JSON line and the --timeseries sidecar are byte-identical
// for any --threads value: tools/check_determinism.sh byte-compares the
// full output at --threads=1 vs 8 on every CI run, and the CI
// scenario-matrix job runs each preset as its own leg.
//
// Usage: fig_scenarios [--scenario=NAME] [bench flags]. Without
// --scenario, all four presets run as arms of one bench.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/stream_collector.h"

using namespace wsc;

namespace {

// VmHWM (peak resident set) of this process in KiB, or 0 when
// /proc/self/status is unavailable. Varies with the host; the determinism
// byte-compare masks it.
uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = static_cast<uint64_t>(std::strtoull(line + 6, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Prefixes every NDJSON line with "BENCH_JSON " for stdout emission.
void EmitNdjsonLines(const std::string& ndjson) {
  size_t start = 0;
  while (start < ndjson.size()) {
    size_t end = ndjson.find('\n', start);
    if (end == std::string::npos) end = ndjson.size();
    std::fputs("BENCH_JSON ", stdout);
    std::fwrite(ndjson.data() + start, 1, end - start, stdout);
    std::fputc('\n', stdout);
    start = end + 1;
  }
}

// One scenario leg: a compact fleet under the named traffic shape,
// aggregated by the streaming collector. Returns the leg's request count
// for the bench-wide throughput line.
uint64_t RunScenario(const std::string& bench, const std::string& name) {
  fleet::FleetConfig config;
  config.num_machines = 12;
  config.num_binaries = 40;
  config.min_colocated = 1;
  config.max_colocated = 2;
  config.duration = Seconds(6);
  config.max_requests_per_process = 8000;
  config.scenario = fleet::ScenarioByName(name);
  bench::ApplyBenchOverrides(config);
  // This bench *is* the sketch pipeline: capture even when no --timeseries
  // file was requested.
  config.timeseries_interval = bench::kBenchTimeseriesInterval;

  fleet::Fleet f(config, tcmalloc::AllocatorConfig(), /*seed=*/20240808);
  fleet::StreamCollector collector;
  f.RunStreaming(collector);
  bench::ReportTelemetry(bench, collector.telemetry(), name.c_str());
  bench::ReportTimeSeries(bench, collector.timeseries(), name.c_str());
  bench::ReportSelfProfile(collector.self_profile());

  const telemetry::IntervalSeries& series = collector.timeseries();
  EmitNdjsonLines(series.RenderNdjson(bench, /*arm=*/name));
  // Scenario bookkeeping: every field here is deterministic across
  // --threads values (peak_rss_kb / peak_pending stay out on purpose).
  bench::BenchJson(bench, "scenario")
      .Field("scenario", name)
      .Field("machines", static_cast<uint64_t>(collector.machines()))
      .Field("processes", static_cast<uint64_t>(collector.processes()))
      .Field("total_requests", collector.total_requests())
      .Field("oom_kills", static_cast<uint64_t>(collector.oom_kills()))
      .Field("deploy_restarts",
             static_cast<uint64_t>(collector.deploy_restarts()))
      .Field("antagonists", static_cast<uint64_t>(collector.antagonists()))
      .Field("failed_allocations", collector.total_failed_allocations())
      .Field("intervals", static_cast<uint64_t>(series.intervals().size()))
      .Emit();

  // The Fig. 3 view: fleet CDF percentiles under this traffic shape,
  // computed from merged log-bucket sketches alone.
  std::printf("\n%s: fleet sketches (merged, ~3%% relative error)\n",
              name.c_str());
  for (const auto& [sketch_name, sketch] : series.sketches()) {
    std::printf(
        "  %-28s n=%-8llu p50=%-12.0f p95=%-12.0f p99=%-12.0f max=%.0f\n",
        sketch_name.c_str(), static_cast<unsigned long long>(sketch.count()),
        sketch.Quantile(0.50), sketch.Quantile(0.95), sketch.Quantile(0.99),
        sketch.max());
  }
  std::printf(
      "  %d machines, %d processes, %d deploy restarts, %d antagonists, "
      "peak rss %llu KiB\n",
      collector.machines(), collector.processes(),
      collector.deploy_restarts(), collector.antagonists(),
      static_cast<unsigned long long>(PeakRssKb()));
  return collector.total_requests();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchFlags(argc, argv);
  // --scenario=NAME narrows the run to one preset (the CI matrix legs);
  // ParseBenchFlags leaves flags it does not know for us.
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) only = argv[i] + 11;
  }
  PrintBanner("Traffic scenarios: Fig. 3 sketch CDFs per load shape");
  bench::BenchTimer timer("fig_scenarios");

  std::vector<std::string> names =
      only.empty() ? fleet::ScenarioNames() : std::vector<std::string>{only};
  uint64_t total_requests = 0;
  for (const std::string& name : names) {
    total_requests += RunScenario(timer.bench(), name);
  }
  timer.Report(total_requests);
  return 0;
}
