// NUCA placement: visualize how the transfer-cache design interacts with
// a chiplet platform's cache topology (Sections 4.2 and 5 of the paper).
//
// Runs the same multi-threaded workload on every platform generation with
// the legacy centralized transfer cache and with NUCA-aware shards, and
// reports cross-domain object flow and the resulting LLC behavior.

#include <cstdio>

#include "common/table.h"
#include "fleet/machine.h"
#include "hw/latency_model.h"
#include "workload/profiles.h"

using namespace wsc;

int main() {
  PrintBanner("platform topologies in the simulated fleet");
  TablePrinter topo_table({"platform", "sockets", "LLC domains", "cores",
                           "logical CPUs", "inter/intra latency"});
  for (auto gen : hw::AllPlatformGenerations()) {
    hw::CpuTopology topo(hw::PlatformSpecFor(gen));
    hw::CoreToCoreLatency lat = hw::MeasureCoreToCore(topo);
    topo_table.AddRow(
        {topo.spec().name, std::to_string(topo.spec().sockets),
         std::to_string(topo.num_domains()), std::to_string(topo.num_cores()),
         std::to_string(topo.num_cpus()),
         lat.inter_domain_ns > 0 ? FormatDouble(lat.InterToIntraRatio(), 2)
                                 : std::string("uniform")});
  }
  topo_table.Print();

  PrintBanner("transfer-cache behavior per platform");
  workload::WorkloadSpec spec = workload::F1QueryProfile();
  TablePrinter table({"platform", "tc mode", "shard hits", "central hits",
                      "LLC MPKI", "throughput (req/cpu-s)"});
  for (auto gen : {hw::PlatformGeneration::kGenB,
                   hw::PlatformGeneration::kGenC,
                   hw::PlatformGeneration::kGenE}) {
    for (bool nuca : {false, true}) {
      tcmalloc::AllocatorConfig config;
      config.nuca_transfer_cache = nuca;
      fleet::Machine machine(hw::PlatformSpecFor(gen), {spec}, config,
                             /*seed=*/31);
      machine.Run(Seconds(10), 80000);
      const fleet::ProcessResult& r = machine.results()[0];
      const auto& tc = machine.allocator(0).transfer_cache().stats();
      table.AddRow(
          {hw::PlatformSpecFor(gen).name,
           machine.allocator(0).transfer_cache().nuca_enabled()
               ? "NUCA shards"
               : "centralized",
           std::to_string(tc.shard_hits), std::to_string(tc.central_hits),
           FormatDouble(r.LlcMpki(), 2),
           FormatDouble(r.driver.Throughput(), 0)});
    }
  }
  table.Print();

  std::printf(
      "\nreading the table: on monolithic platforms (gen-b) the NUCA mode\n"
      "degenerates to the centralized cache; on chiplet platforms the\n"
      "shards serve domain-local requests and the LLC miss rate drops.\n");
  return 0;
}
