// Workload study: characterize a custom application's allocation behavior
// the way Section 3 of the paper characterizes the fleet — size and
// lifetime distributions, malloc tax, fragmentation, and per-tier cache
// behavior — then check how each warehouse-scale optimization affects it.
//
// Shows how a downstream user would model *their* application with a
// WorkloadSpec and use the A/B machinery to decide which allocator
// features to enable.

#include <cstdio>

#include "common/table.h"
#include "fleet/experiment.h"
#include "fleet/machine.h"
#include "workload/workload.h"

using namespace wsc;
using namespace wsc::workload;

namespace {

// An example application: an RPC server with a session cache.
// Replace the mixture components with your own measurements.
WorkloadSpec MyServerSpec() {
  WorkloadSpec spec;
  spec.name = "my-rpc-server";
  spec.behaviors = {
      // Request decode scratch: small, dies with the request.
      MakeBehavior(0.6, SizeLognormal(128, 2.0),
                   LifetimeLognormal(Microseconds(400), 3.0)),
      // Response buffers.
      MakeBehavior(0.3, SizeLognormal(8 * 1024, 1.8),
                   LifetimeLognormal(Milliseconds(5), 3.0)),
      // Session cache entries: same sizes as scratch, very different
      // lifetime (the diversity the paper highlights).
      MakeBehavior(0.1, SizeLognormal(256, 2.0),
                   LifetimeLognormal(Seconds(2), 3.0)),
  };
  spec.allocs_per_request = 15;
  spec.request_work_ns = 5000;
  spec.request_interval_ns = Milliseconds(1);
  spec.min_threads = 2;
  spec.max_threads = 16;
  spec.thread_period = Seconds(8);
  spec.startup_bytes = 100e6;  // routing tables etc.
  spec.startup_object_size = SizePoint(320);
  return spec;
}

}  // namespace

int main() {
  WorkloadSpec spec = MyServerSpec();
  hw::PlatformSpec platform =
      hw::PlatformSpecFor(hw::PlatformGeneration::kGenD);

  // --- Characterize under the baseline allocator ---
  PrintBanner("characterization: " + spec.name);
  tcmalloc::AllocatorConfig baseline;
  fleet::Machine machine(platform, {spec}, baseline, /*seed=*/2024);
  machine.Run(Seconds(20), 200000);
  const fleet::ProcessResult& r = machine.results()[0];

  std::printf("requests processed:   %llu (%.0f req/cpu-s)\n",
              static_cast<unsigned long long>(r.driver.requests),
              r.driver.Throughput());
  std::printf("malloc tax:           %.2f%% of CPU cycles\n",
              100.0 * r.driver.MallocCycleFraction());
  std::printf("avg heap / live:      %s / %s\n",
              FormatBytes(r.avg_heap_bytes).c_str(),
              FormatBytes(r.avg_live_bytes).c_str());
  std::printf("hugepage coverage:    %.1f%%\n", 100.0 * r.hugepage_coverage);
  std::printf("dTLB walk cycles:     %.2f%%\n",
              100.0 * r.DtlbWalkFraction());
  std::printf("LLC load MPKI:        %.2f\n", r.LlcMpki());

  // Object-size CDF (Fig. 7 style).
  const LogHistogram& count_hist = machine.allocator(0).alloc_count_hist();
  const LogHistogram& bytes_hist = machine.allocator(0).alloc_bytes_hist();
  std::printf("\nobject sizes: <1KiB = %.1f%% of objects, %.1f%% of bytes\n",
              100.0 * count_hist.FractionBelow(1024),
              100.0 * bytes_hist.FractionBelow(1024));

  // --- Decide which optimizations pay off for this workload ---
  PrintBanner("A/B: which allocator features help this app?");
  struct Variant {
    const char* name;
    tcmalloc::AllocatorConfig config;
  };
  std::vector<Variant> variants;
  {
    tcmalloc::AllocatorConfig c;
    c.dynamic_cpu_caches = true;
    c.per_cpu_cache_bytes /= 2;
    variants.push_back({"heterogeneous caches", c});
  }
  {
    tcmalloc::AllocatorConfig c;
    c.nuca_transfer_cache = true;
    variants.push_back({"NUCA transfer cache", c});
  }
  {
    tcmalloc::AllocatorConfig c;
    c.span_prioritization = true;
    variants.push_back({"span prioritization", c});
  }
  {
    tcmalloc::AllocatorConfig c;
    c.lifetime_aware_filler = true;
    variants.push_back({"lifetime-aware filler", c});
  }
  variants.push_back({"all four",
                      tcmalloc::AllocatorConfig::AllOptimizations({})});

  TablePrinter table({"variant", "throughput", "memory", "CPI"});
  for (const Variant& v : variants) {
    fleet::AbDelta delta = fleet::RunBenchmarkAb(
        spec, platform, baseline, v.config, 2025, Seconds(20), 200000);
    table.AddRow({v.name, FormatSignedPercent(delta.ThroughputChangePct()),
                  FormatSignedPercent(delta.MemoryChangePct()),
                  FormatSignedPercent(delta.CpiChangePct())});
  }
  table.Print();
  std::printf(
      "\nuse these deltas the way the paper's fleet experiments are used:\n"
      "enable the features whose productivity gain outweighs their cost\n"
      "for your workload.\n");
  return 0;
}
