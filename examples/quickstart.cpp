// Quickstart: allocate and free through the warehouse-scale allocator and
// inspect its statistics.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "tcmalloc/allocator.h"

using namespace wsc;
using namespace wsc::tcmalloc;

int main() {
  // 1. Configure the allocator. The defaults reproduce the paper's
  //    baseline TCMalloc; AllocatorConfig::AllOptimizations() enables the
  //    four warehouse-scale redesigns.
  AllocatorConfig config;
  config.num_vcpus = 4;  // dense virtual-CPU id space

  Allocator allocator(config);

  // 2. Allocate and free. Each operation names the virtual CPU performing
  //    it and the current (simulated) time, which the sampler uses for
  //    lifetime profiles.
  SimTime now = 0;
  std::vector<uintptr_t> objects;
  Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    now += Microseconds(1);
    size_t size = 1 + rng.UniformInt(rng.Bernoulli(0.02) ? 1048576 : 2048);
    int vcpu = static_cast<int>(rng.UniformInt(4));
    objects.push_back(allocator.Allocate(size, vcpu, now));
    if (objects.size() > 20000) {
      // Free from a different vCPU: the object flows back through the
      // transfer cache, as on a real multi-core server.
      size_t victim = rng.UniformInt(objects.size());
      allocator.Free(objects[victim], static_cast<int>(rng.UniformInt(4)),
                     now);
      objects[victim] = objects.back();
      objects.pop_back();
    }
    if (i % 10000 == 0) allocator.Maintain(now);
  }

  // 3. Inspect the cache hierarchy (Fig. 1 of the paper).
  const TierHitCounts& hits = allocator.alloc_tier_hits();
  std::printf("allocation tier hits:\n");
  std::printf("  per-CPU cache:     %llu\n",
              static_cast<unsigned long long>(hits.cpu_cache));
  std::printf("  transfer cache:    %llu\n",
              static_cast<unsigned long long>(hits.transfer_cache));
  std::printf("  central free list: %llu\n",
              static_cast<unsigned long long>(hits.central_free_list));
  std::printf("  page heap:         %llu (of which %llu grew the arena)\n",
              static_cast<unsigned long long>(hits.page_heap),
              static_cast<unsigned long long>(hits.mmap));

  // 4. Heap statistics: live memory and fragmentation per tier (the
  //    Fig. 5b / 6b decomposition).
  HeapStats stats = allocator.CollectStats();
  auto mb = [](size_t bytes) { return bytes / (1024.0 * 1024.0); };
  std::printf("\nheap statistics:\n");
  std::printf("  live:                  %8.2f MiB\n", mb(stats.live_bytes));
  std::printf("  per-CPU cache free:    %8.2f MiB\n",
              mb(stats.cpu_cache_free));
  std::printf("  transfer cache free:   %8.2f MiB\n",
              mb(stats.transfer_cache_free));
  std::printf("  central free list:     %8.2f MiB\n",
              mb(stats.central_free_list_free));
  std::printf("  page heap free:        %8.2f MiB\n",
              mb(stats.page_heap_free));
  std::printf("  released to OS:        %8.2f MiB\n",
              mb(stats.released_bytes));
  std::printf("  fragmentation ratio:   %8.2f %%\n",
              100.0 * stats.FragmentationRatio());
  std::printf("  hugepage coverage:     %8.2f %%\n",
              100.0 * allocator.HugepageCoverage());

  // 5. Simulated malloc-cycle accounting (Fig. 6a).
  const MallocCycleBreakdown& cycles = allocator.cycle_breakdown();
  std::printf("\nmalloc cycles by component (%% of %.1f us total):\n",
              cycles.Total() / 1000.0);
  auto pct = [&](double v) { return 100.0 * v / cycles.Total(); };
  std::printf("  per-CPU cache %.1f%%, transfer %.1f%%, CFL %.1f%%, "
              "pageheap %.1f%%, mmap %.1f%%, sampled %.1f%%, "
              "prefetch %.1f%%, other %.1f%%\n",
              pct(cycles.cpu_cache_ns), pct(cycles.transfer_cache_ns),
              pct(cycles.central_free_list_ns), pct(cycles.page_heap_ns),
              pct(cycles.mmap_ns), pct(cycles.sampled_ns),
              pct(cycles.prefetch_ns), pct(cycles.other_ns));

  // 6. Clean up.
  for (uintptr_t addr : objects) allocator.Free(addr, 0, now);
  std::printf("\nall objects freed; live = %zu bytes\n",
              allocator.CollectStats().live_bytes);
  return 0;
}
