// Fleet A/B experiment: evaluate an allocator change the way the paper
// does (Section 2.2) — apply it to an experiment group of machines, keep a
// control group, and compare productivity metrics per application and
// fleet-wide.
//
// This example rolls out the full warehouse-scale redesign (all four
// optimizations) to a small simulated fleet and prints the Section 4.5
// style results.

#include <cstdio>

#include "common/table.h"
#include "fleet/experiment.h"

using namespace wsc;

int main(int argc, char** argv) {
  // Fleet size is adjustable: ./fleet_ab_experiment [machines]
  fleet::FleetConfig config;
  config.num_machines = argc > 1 ? std::atoi(argv[1]) : 6;
  config.num_binaries = 30;
  config.duration = Seconds(12);
  config.max_requests_per_process = 100000;

  tcmalloc::AllocatorConfig control;  // baseline TCMalloc
  tcmalloc::AllocatorConfig experiment =
      tcmalloc::AllocatorConfig::AllOptimizations(control);

  std::printf("running paired A/B: %d machines x 2 arms...\n",
              config.num_machines);
  fleet::AbResult result =
      fleet::RunFleetAb(config, control, experiment, /*seed=*/7);

  PrintBanner("fleet A/B: all four warehouse-scale optimizations");
  TablePrinter table({"slice", "processes", "throughput", "memory", "CPI",
                      "dTLB walk", "LLC MPKI"});
  auto add_row = [&table](const fleet::AbDelta& delta) {
    table.AddRow(
        {delta.label, std::to_string(delta.control.processes),
         FormatSignedPercent(delta.ThroughputChangePct()),
         FormatSignedPercent(delta.MemoryChangePct()),
         FormatSignedPercent(delta.CpiChangePct()),
         FormatDouble(100.0 * delta.control.DtlbWalkFraction(), 2) + "% -> " +
             FormatDouble(100.0 * delta.experiment.DtlbWalkFraction(), 2) +
             "%",
         FormatDouble(delta.control.LlcMpki(), 2) + " -> " +
             FormatDouble(delta.experiment.LlcMpki(), 2)});
  };
  add_row(result.fleet);
  for (const auto& delta : result.per_app) {
    if (delta.control.processes > 0) add_row(delta);
  }
  table.Print();

  std::printf(
      "\npaper reference (Section 4.5): +1.4%% fleet throughput,\n"
      "-3.4%% fleet memory; top-5 apps up to +8.1%% / -6.3%%.\n"
      "\nthe experiment and control fleets share identical composition and\n"
      "workload randomness (paired seeds), so even sub-percent deltas are\n"
      "measurable with a handful of machines.\n");
  return 0;
}
