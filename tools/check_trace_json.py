#!/usr/bin/env python3
"""Validate --trace / --profile outputs of the bench binaries.

`--trace=out.json` writes Chrome-tracing JSON (the Object Format read by
chrome://tracing and ui.perfetto.dev); `--profile=out.json` writes the
pprof-style heap profile consumed by tools/mallocz.py. CI smoke-runs a
bench with both flags and pipes the files through this checker.

Usage:
  tools/check_trace_json.py --trace out.json [--require-tiers]
  tools/check_trace_json.py --profile heap.json [--min-attribution 0.95]

Checks, for traces:
  - top-level {"traceEvents": [...]} with process/thread metadata records
  - every event has name/cat/ph/ts/pid/tid and instant-event scope
  - with --require-tiers: events from every tier an allocator exercise
    must reach (cpu_cache, transfer_cache, central_free_list, page_heap,
    huge_page_filler)

Checks, for profiles:
  - schema version, callsite rows with consistent sampled/exact fields
  - attributed_live_bytes / total_live_bytes >= --min-attribution
Exit status is non-zero on any failure.
"""

import argparse
import json
import sys

# Tiers every allocator exercise drives, even a tiny CI smoke shape.
# "pressure" fires only under memory limits and "sampler" only when the
# sampling interval is crossed, so they are not required.
REQUIRED_TRACE_TIERS = (
    "cpu_cache",
    "transfer_cache",
    "central_free_list",
    "page_heap",
    "huge_page_filler",
)

KNOWN_TIERS = REQUIRED_TRACE_TIERS + ("pressure", "sampler")

PROFILE_SCHEMA_VERSION = 1


def check_trace(path, require_tiers, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"trace {path}: {exc}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append(f"trace {path}: missing or empty 'traceEvents'")
        return

    categories = set()
    metadata = 0
    instants = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"trace {path}: event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            metadata += 1
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"trace {path}: event {i} unknown metadata "
                              f"{event.get('name')!r}")
            if not isinstance(event.get("args", {}).get("name"), str):
                errors.append(f"trace {path}: event {i} metadata missing "
                              "args.name")
            continue
        if ph != "i":
            errors.append(f"trace {path}: event {i} bad ph {ph!r}")
            continue
        instants += 1
        if event.get("s") != "t":
            errors.append(f"trace {path}: event {i} bad scope "
                          f"{event.get('s')!r}")
        for field in ("name", "cat"):
            if not isinstance(event.get(field), str) or not event[field]:
                errors.append(f"trace {path}: event {i} bad '{field}'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"trace {path}: event {i} bad ts {ts!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int) or event[field] < 0:
                errors.append(f"trace {path}: event {i} bad '{field}'")
        if not isinstance(event.get("args"), dict):
            errors.append(f"trace {path}: event {i} missing 'args'")
        cat = event.get("cat")
        if isinstance(cat, str):
            if cat not in KNOWN_TIERS:
                errors.append(f"trace {path}: event {i} unknown tier "
                              f"{cat!r}")
            categories.add(cat)

    if metadata == 0:
        errors.append(f"trace {path}: no process/thread metadata records")
    if instants == 0:
        errors.append(f"trace {path}: no instant events")
    if require_tiers:
        missing = [t for t in REQUIRED_TRACE_TIERS if t not in categories]
        if missing:
            errors.append(f"trace {path}: missing tiers: "
                          f"{', '.join(missing)}")
    if not errors:
        print(f"check_trace_json: trace OK ({instants} event(s), "
              f"{metadata} metadata record(s), tiers: "
              f"{', '.join(sorted(categories))})")


def check_profile(path, min_attribution, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"profile {path}: {exc}")
        return
    if doc.get("schema_version") != PROFILE_SCHEMA_VERSION:
        errors.append(f"profile {path}: bad schema_version "
                      f"{doc.get('schema_version')!r}")
    for field in ("total_live_bytes", "attributed_live_bytes",
                  "samples_taken"):
        if not isinstance(doc.get(field), int) or doc[field] < 0:
            errors.append(f"profile {path}: bad '{field}'")
            return
    callsites = doc.get("callsites")
    if not isinstance(callsites, list) or not callsites:
        errors.append(f"profile {path}: missing or empty 'callsites'")
        return
    for i, row in enumerate(callsites):
        if not isinstance(row.get("name"), str) or not row["name"]:
            errors.append(f"profile {path}: callsite {i} bad 'name'")
        for field in ("id", "allocs", "frees", "live_bytes",
                      "peak_live_bytes", "cum_bytes", "samples"):
            if not isinstance(row.get(field), int) or row[field] < 0:
                errors.append(f"profile {path}: callsite {i} bad "
                              f"'{field}'")
        if row.get("live_bytes", 0) > row.get("peak_live_bytes", 0):
            errors.append(f"profile {path}: callsite {i} live_bytes above "
                          "its peak")

    total = doc["total_live_bytes"]
    attributed = doc["attributed_live_bytes"]
    if total > 0:
        coverage = attributed / total
        if coverage < min_attribution:
            errors.append(
                f"profile {path}: attribution {coverage:.1%} below the "
                f"{min_attribution:.0%} floor "
                f"({attributed}/{total} bytes)")
        elif not errors:
            print(f"check_trace_json: profile OK "
                  f"({len(callsites)} callsite(s), attribution "
                  f"{coverage:.1%})")
    elif not errors:
        print(f"check_trace_json: profile OK ({len(callsites)} "
              "callsite(s), empty live heap)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="Chrome-tracing JSON file to validate")
    parser.add_argument("--require-tiers", action="store_true",
                        help="require events from every allocator tier")
    parser.add_argument("--profile", default=None,
                        help="heap-profile JSON file to validate")
    parser.add_argument("--min-attribution", type=float, default=0.95,
                        help="minimum attributed/total live-byte ratio")
    args = parser.parse_args()
    if args.trace is None and args.profile is None:
        parser.error("nothing to check: pass --trace and/or --profile")

    errors = []
    if args.trace:
        check_trace(args.trace, args.require_tiers, errors)
    if args.profile:
        check_profile(args.profile, args.min_attribution, errors)
    if errors:
        for error in errors:
            print(f"check_trace_json: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
