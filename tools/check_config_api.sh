#!/usr/bin/env bash
# CI check: benches and tests must construct AllocatorConfig through
# AllocatorConfig::Builder (the validating public API), never by assigning
# config fields directly. Direct assignment skips validation and silently
# produces configs the allocator would reject (or worse, misinterpret —
# e.g. NUCA with one LLC domain). Only src/tcmalloc/ itself and the fleet
# placement layer (src/fleet/) may touch the fields.
#
#   tools/check_config_api.sh [repo-root]
#
# Exits non-zero listing every offending file:line.

set -u

ROOT="${1:-$(dirname "$0")/..}"

# Every knob field of AllocatorConfig (tcmalloc/config.h). Reading them is
# fine; assigning them outside src/ is not.
FIELDS='num_vcpus|per_thread_front_end|per_cpu_cache_bytes|dynamic_cpu_caches'
FIELDS+='|cpu_cache_resize_interval|cpu_cache_grow_candidates'
FIELDS+='|per_cpu_cache_min_bytes|nuca_transfer_cache|num_llc_domains'
FIELDS+='|transfer_cache_batches|nuca_shard_batches|nuca_plunder_interval'
FIELDS+='|span_prioritization|cfl_num_lists|lifetime_aware_filler'
FIELDS+='|filler_capacity_threshold|subrelease_free_fraction|release_interval'
FIELDS+='|numa_aware|num_numa_nodes|sample_interval_bytes|soft_limit_bytes'
FIELDS+='|hard_limit_bytes|pressure_cache_floor_fraction|arena_base'
FIELDS+='|arena_bytes|guarded_sampling|real_memory|real_memory_reserve_bytes'

# Match `<expr>.<field> =` but not `==` (comparisons stay legal).
offenders="$(grep -rEn "\.(${FIELDS})[[:space:]]*=([^=]|$)" \
  "$ROOT/bench" "$ROOT/tests" --include='*.cc' --include='*.h' 2>/dev/null)"

if [ -n "$offenders" ]; then
  echo "check_config_api: direct AllocatorConfig field assignment found;" >&2
  echo "use AllocatorConfig::Builder instead:" >&2
  echo "$offenders" >&2
  exit 1
fi

# The backend seam is part of the same contract: benches and tests get a
# backing by building a config (WithRealMemory()) and letting the
# allocator construct it — never by instantiating SystemAllocator or a
# MemoryBacking directly. tests/tcmalloc/ is exempt: the allocator's own
# unit tests exercise the backing classes in isolation.
ctors="$(grep -rEn \
  '\b(SystemAllocator|RealMemoryBacking|VirtualArenaBacking)[[:space:]]*\(' \
  "$ROOT/bench" "$ROOT/tests" --include='*.cc' --include='*.h' 2>/dev/null |
  grep -v "^$ROOT/tests/tcmalloc/")"

if [ -n "$ctors" ]; then
  echo "check_config_api: direct backend construction found; use" >&2
  echo "AllocatorConfig::Builder::WithRealMemory() and let the allocator" >&2
  echo "own its backing (tests/tcmalloc/ is the only exemption):" >&2
  echo "$ctors" >&2
  exit 1
fi
echo "check_config_api: OK (bench/ and tests/ construct AllocatorConfig via Builder)"
