#!/usr/bin/env python3
"""Differential flame graphs: compare two folded self-profiles.

Computes each frame's self share (samples where the frame is the leaf,
as a fraction of all samples) and total share (samples anywhere under
the frame) in BASELINE and HEAD, prints a delta table sorted by
|self-share delta|, and optionally renders a diff flame graph of HEAD
colored by delta (red = grew vs baseline, blue = shrank, grey = flat).

The simulator's profiles are deterministic, so on simulated benches any
nonzero delta is a real code-path shift, not sampling noise; real-threads
profiles (fig_mt_scaling) jitter with work stealing and need a looser
budget.

Usage:
  tools/flamediff.py base.folded head.folded
  tools/flamediff.py base.folded head.folded --budget 0.05
  tools/flamediff.py base.folded head.folded --svg diff.svg
  tools/flamediff.py --self-test

--budget X fails (exit 1) when any frame's SELF share grew by more than
X absolute (e.g. 0.05 = five percentage points) — the same "who got
slower" question the paper's continuous-profiling loop asks fleet-wide.
--table N limits the printed table to the top N rows (default 20).

Exit status: 0 when within budget (or no budget given); 1 on a budget
violation or bad input.
"""

import argparse
import sys

import flamegraph


def frame_shares(stacks):
    """Returns (self_share, total_share) dicts: frame -> fraction [0,1]."""
    total = sum(stacks.values())
    self_counts = {}
    total_counts = {}
    for frames, count in stacks.items():
        self_counts[frames[-1]] = self_counts.get(frames[-1], 0) + count
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count
    if total == 0:
        return {}, {}
    return ({f: c / total for f, c in self_counts.items()},
            {f: c / total for f, c in total_counts.items()})


def diff_rows(base_stacks, head_stacks):
    """Per-frame deltas, sorted by |self delta| descending.

    Returns rows of (frame, base_self, head_self, self_delta,
    base_total, head_total).
    """
    base_self, base_total = frame_shares(base_stacks)
    head_self, head_total = frame_shares(head_stacks)
    rows = []
    for frame in sorted(set(base_self) | set(head_self)):
        bs = base_self.get(frame, 0.0)
        hs = head_self.get(frame, 0.0)
        rows.append((frame, bs, hs, hs - bs,
                     base_total.get(frame, 0.0), head_total.get(frame, 0.0)))
    rows.sort(key=lambda r: (-abs(r[3]), r[0]))
    return rows


def format_table(rows, limit):
    width = max([len("frame")] + [len(r[0]) for r in rows[:limit]])
    lines = [f"{'frame':<{width}}  {'self(base)':>10}  {'self(head)':>10}  "
             f"{'delta':>8}  {'total(base)':>11}  {'total(head)':>11}"]
    for frame, bs, hs, delta, bt, ht in rows[:limit]:
        lines.append(
            f"{frame:<{width}}  {100 * bs:>9.2f}%  {100 * hs:>9.2f}%  "
            f"{100 * delta:>+7.2f}%  {100 * bt:>10.2f}%  {100 * ht:>10.2f}%")
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more frames (use --table N)")
    return "\n".join(lines)


def delta_color_fn(rows):
    """Color frames by self-share delta: red grew, blue shrank, grey flat."""
    deltas = {frame: delta for frame, _, _, delta, _, _ in rows}
    max_abs = max([abs(d) for d in deltas.values()] + [1e-9])

    def color(frame):
        delta = deltas.get(frame, 0.0)
        strength = min(1.0, abs(delta) / max_abs)
        fade = int(200 * (1.0 - strength))
        if delta > 1e-12:
            return f"rgb(255,{55 + fade},{55 + fade})"
        if delta < -1e-12:
            return f"rgb({55 + fade},{55 + fade},255)"
        return "rgb(224,224,224)"

    return color


def run_diff(base_stacks, head_stacks, budget=None, svg_path=None,
             table_limit=20, title="flamediff", out=sys.stdout):
    rows = diff_rows(base_stacks, head_stacks)
    print(format_table(rows, table_limit), file=out)

    if svg_path is not None:
        svg = flamegraph.render_svg(
            head_stacks, title=title, min_percent=0.0,
            color_fn=delta_color_fn(rows),
            subtitle="red = self-share grew vs baseline, blue = shrank")
        with open(svg_path, "w", encoding="utf-8") as f:
            f.write(svg)
        print(f"flamediff: wrote {svg_path}", file=out)

    if budget is not None:
        violations = [(frame, delta) for frame, _, _, delta, _, _ in rows
                      if delta > budget]
        if violations:
            for frame, delta in violations:
                print(
                    f"flamediff: FAIL: frame '{frame}' self-share grew "
                    f"{100 * delta:+.2f}% (budget {100 * budget:.2f}%)",
                    file=out)
            return 1
        print(f"flamediff: OK: no frame grew past "
              f"{100 * budget:.2f}% self-share budget", file=out)
    return 0


def self_test():
    import io

    base = flamegraph.parse_folded(
        "main;alloc;fast 700\n"
        "main;alloc;slow 100\n"
        "main;free 200\n")
    # Identical profiles pass any budget.
    rc = run_diff(base, dict(base), budget=0.0001, out=io.StringIO())
    assert rc == 0, "identical profiles must pass"

    # Inject a synthetic hot frame taking ~30% of head samples: the budget
    # must trip and the table must rank it first.
    head = dict(base)
    head[("main", "alloc", "lut_miss")] = 430
    rows = diff_rows(base, head)
    assert rows[0][0] == "lut_miss", rows[0]
    assert rows[0][3] > 0.25, rows[0]
    capture = io.StringIO()
    rc = run_diff(base, head, budget=0.05, out=capture)
    assert rc == 1, "synthetic hot frame must trip the budget"
    assert "lut_miss" in capture.getvalue()

    # The budget is growth-only: the shrinking lut_miss frame itself must
    # not trip it. (Shares are relative, so OTHER frames inflate when a
    # hot one disappears — use a budget above that inflation.)
    capture = io.StringIO()
    rc = run_diff(head, base, budget=0.25, out=capture)
    assert rc == 0, "shrinking frames are not regressions"
    assert "lut_miss" not in capture.getvalue().splitlines()[-1]

    # Diff SVG renders with the delta palette.
    import os
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        svg_path = os.path.join(tmp, "diff.svg")
        rc = run_diff(base, head, svg_path=svg_path, out=io.StringIO())
        assert rc == 0
        with open(svg_path, encoding="utf-8") as f:
            svg = f.read()
        assert 'data-frame="lut_miss"' in svg
        assert "rgb(255," in svg, "grown frame must render red"

    print("flamediff.py: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline .folded file")
    parser.add_argument("head", nargs="?", help="head .folded file")
    parser.add_argument("--budget", type=float, default=None,
                        help="max allowed absolute self-share growth "
                             "(0.05 = 5 percentage points)")
    parser.add_argument("--svg", help="write a diff flame graph SVG here")
    parser.add_argument("--table", type=int, default=20,
                        help="rows to print in the delta table")
    parser.add_argument("--title", default=None, help="diff SVG title")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.head:
        parser.error("baseline and head folded files are required "
                     "(or --self-test)")

    with open(args.baseline, encoding="utf-8") as f:
        base_stacks = flamegraph.parse_folded(f.read())
    with open(args.head, encoding="utf-8") as f:
        head_stacks = flamegraph.parse_folded(f.read())
    title = args.title or f"{args.head} vs {args.baseline}"
    return run_diff(base_stacks, head_stacks, budget=args.budget,
                    svg_path=args.svg, table_limit=args.table, title=title)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not a diff failure.
        sys.exit(0)
