#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition (telemetry::RenderOpenMetrics).

CI writes a `--statsz=FILE.om` dump from a bench run and pipes it through
this linter, so a drift in the exporter (bad metric name, missing # EOF,
non-cumulative histogram buckets) fails the build instead of silently
breaking every Prometheus scrape downstream.

Checks (the subset of the OpenMetrics spec the exporter uses):
  * every line is a `# TYPE`/`# HELP` comment, a sample, or `# EOF`;
  * the exposition ends with exactly one `# EOF` line;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* ;
  * every sample is preceded by a `# TYPE` for its metric family;
  * counter samples use the `_total` suffix and are non-negative;
  * histogram families expose `_bucket{le="..."}` series with
    non-decreasing cumulative counts ending in le="+Inf", plus `_sum`
    and `_count`, with the +Inf bucket equal to `_count`;
  * all sample values parse as floats.

Usage:
  tools/check_openmetrics.py FILE.om
  some_producer | tools/check_openmetrics.py -
  tools/check_openmetrics.py --self-test
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')

SUFFIXES = ("_total", "_bucket", "_sum", "_count")


def family_of(sample_name):
    """Strips the typed suffix to recover the # TYPE family name."""
    for suffix in SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def lint(text):
    """Returns a list of error strings (empty = clean)."""
    errors = []
    types = {}           # family -> declared type
    histograms = {}      # family -> {"buckets": [(le, v)], "sum": x, "count": n}
    saw_eof = False

    for line_no, line in enumerate(text.split("\n"), start=1):
        if line == "" :
            continue
        if saw_eof:
            errors.append(f"line {line_no}: content after # EOF")
            break
        if line.startswith("#"):
            parts = line.split(" ")
            if line == "# EOF":
                saw_eof = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                name, mtype = parts[2], parts[3]
                if not NAME_RE.match(name):
                    errors.append(f"line {line_no}: bad metric name {name!r}")
                if mtype not in ("counter", "gauge", "histogram", "summary",
                                 "info", "unknown"):
                    errors.append(f"line {line_no}: bad type {mtype!r}")
                if name in types:
                    errors.append(f"line {line_no}: duplicate # TYPE {name}")
                types[name] = mtype
            elif len(parts) >= 3 and parts[1] == "HELP":
                pass
            else:
                errors.append(f"line {line_no}: malformed comment {line!r}")
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {line_no}: malformed sample {line!r}")
            continue
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"line {line_no}: non-numeric value "
                          f"{match.group('value')!r}")
            continue
        labels = {}
        if match.group("labels"):
            for item in match.group("labels").split(","):
                lmatch = LABEL_RE.match(item)
                if not lmatch:
                    errors.append(f"line {line_no}: malformed label {item!r}")
                    continue
                labels[lmatch.group("key")] = lmatch.group("val")

        family = family_of(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            errors.append(f"line {line_no}: sample {name!r} has no # TYPE")
            continue
        if declared == "counter":
            if not name.endswith("_total"):
                errors.append(f"line {line_no}: counter sample {name!r} "
                              "lacks _total suffix")
            if value < 0:
                errors.append(f"line {line_no}: negative counter {name!r}")
        elif declared == "histogram":
            hist = histograms.setdefault(family,
                                         {"buckets": [], "sum": None,
                                          "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {line_no}: histogram bucket "
                                  f"{name!r} missing le label")
                else:
                    hist["buckets"].append((line_no, labels["le"], value))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value

    if not saw_eof:
        errors.append("missing # EOF terminator")

    for family, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        values = [v for (_, _, v) in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            errors.append(f"histogram {family}: bucket counts not cumulative")
        if buckets[-1][1] != "+Inf":
            errors.append(f"histogram {family}: last bucket le="
                          f"{buckets[-1][1]!r}, expected +Inf")
        if hist["count"] is None:
            errors.append(f"histogram {family}: missing _count")
        elif values[-1] != hist["count"]:
            errors.append(f"histogram {family}: +Inf bucket {values[-1]} != "
                          f"_count {hist['count']}")
        if hist["sum"] is None:
            errors.append(f"histogram {family}: missing _sum")

    return errors


def self_test():
    good = (
        "# TYPE wsc_allocator_allocations counter\n"
        "wsc_allocator_allocations_total 42\n"
        "# TYPE wsc_allocator_heap_bytes gauge\n"
        "wsc_allocator_heap_bytes 1048576\n"
        "# TYPE wsc_sampler_sizes histogram\n"
        'wsc_sampler_sizes_bucket{le="64"} 3\n'
        'wsc_sampler_sizes_bucket{le="4096"} 7\n'
        'wsc_sampler_sizes_bucket{le="+Inf"} 9\n'
        "wsc_sampler_sizes_sum 12345\n"
        "wsc_sampler_sizes_count 9\n"
        "# EOF\n")
    cases = [
        ("valid exposition", good, 0),
        ("missing EOF", good.replace("# EOF\n", ""), 1),
        ("counter without _total",
         good.replace("allocations_total", "allocations"), 1),
        ("non-cumulative buckets",
         good.replace('le="4096"} 7', 'le="4096"} 2'), 1),
        ("last bucket not +Inf",
         good.replace('wsc_sampler_sizes_bucket{le="+Inf"} 9\n', "")
             .replace("wsc_sampler_sizes_count 9", "wsc_sampler_sizes_count 7"),
         1),
        ("+Inf != count",
         good.replace("wsc_sampler_sizes_count 9",
                      "wsc_sampler_sizes_count 8"), 1),
        ("sample without TYPE",
         good + "mystery_metric 1\n# EOF\n", 1),  # also trips content-after-EOF
        ("garbage line", good.replace(
            "wsc_allocator_heap_bytes 1048576", "!!! not a metric"), 1),
    ]
    failures = 0
    for label, text, want_errors in cases:
        errors = lint(text)
        ok = (len(errors) == 0) == (want_errors == 0)
        if not ok:
            failures += 1
            print(f"self-test FAIL: {label}: errors={errors}",
                  file=sys.stderr)
    if failures:
        return 1
    print(f"check_openmetrics: self-test OK ({len(cases)} cases)")
    return 0


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(sys.argv[1], encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"check_openmetrics: {exc}", file=sys.stderr)
            return 1
    errors = lint(text)
    if errors:
        for error in errors:
            print(f"check_openmetrics: {error}", file=sys.stderr)
        return 1
    samples = sum(1 for line in text.split("\n")
                  if line and not line.startswith("#"))
    print(f"check_openmetrics: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
