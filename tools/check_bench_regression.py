#!/usr/bin/env python3
"""Perf-regression gate over BENCH_JSON output.

Compares a bench run against its checked-in baseline
(bench/baselines/<bench>.json) with per-metric tolerance bands. CI wall
clock is too noisy to gate on, but this simulator's cost model is
deterministic: for a pinned fleet shape the request count and the
simulated malloc cost per allocation are machine-independent, so the gate
keys on those. wall_seconds is recorded in baselines for human reference
only and never gated.

Gated metrics, derived from each bench's BENCH_JSON lines:
  sim_requests          total simulated requests (throughput line);
                        deterministic, so the band only absorbs
                        compiler-to-compiler floating-point drift
  malloc_ns_per_alloc   sum of allocator/cycles_* over all telemetry
                        lines divided by the summed allocator/allocations
                        -- the simulated cost of the allocator itself
  scaling_efficiency    real-threads benches only (fig_mt_scaling): the
                        final throughput line's hardware-normalized
                        multi-thread efficiency. Higher is better, so the
                        gate only fires when it DROPS below the band --
                        a floor against the sharded-refill collapse
                        documented in SNIPPETS.md Snippet 1.

A baseline may set a metric's tolerance to null to exclude it from the
gate (e.g. real-threads benches have no simulated malloc cost).

Usage:
  tools/check_bench_regression.py out/fig03.out out/fig_pressure.out
  tools/check_bench_regression.py --update out/*.out   # (re)write baselines
  tools/check_bench_regression.py --self-test out/*.out

--self-test proves the gate has teeth: after the real comparison passes,
it replays the comparison with a synthetic 10% slowdown applied to every
measured malloc_ns_per_alloc and requires that the gate now fails.

Exit status: 0 when every bench is within its bands (and, under
--self-test, the synthetic slowdown is caught); 1 otherwise.
"""

import argparse
import json
import os
import sys

# Default relative tolerance bands; a baseline file can override either
# via its "tolerance" object. The malloc-cost band must stay below the
# 10% synthetic slowdown or --self-test will (rightly) fail the gate.
DEFAULT_TOLERANCE = {
    "sim_requests": 0.005,
    "malloc_ns_per_alloc": 0.05,
}

# Metrics where bigger is better: only the low side of the band gates.
HIGHER_IS_BETTER = {"scaling_efficiency"}


def parse_bench_output(path):
    """Extracts {bench, sim_requests, wall_seconds, malloc_ns_per_alloc}."""
    bench = None
    sim_requests = None
    wall_seconds = None
    scaling_efficiency = None
    cycles = 0.0
    allocations = 0.0
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            if not line.startswith("BENCH_JSON "):
                continue
            obj = json.loads(line[len("BENCH_JSON "):])
            bench = obj.get("bench", bench)
            if obj.get("kind") == "throughput":
                sim_requests = obj.get("sim_requests")
                wall_seconds = obj.get("wall_seconds")
                scaling_efficiency = obj.get("scaling_efficiency",
                                             scaling_efficiency)
            elif obj.get("kind") == "telemetry":
                metrics = obj.get("metrics", {})
                for key, value in metrics.items():
                    if key.startswith("allocator/cycles_"):
                        cycles += value
                allocations += metrics.get("allocator/allocations", 0.0)
    if bench is None or sim_requests is None:
        raise ValueError(f"{path}: no BENCH_JSON throughput line")
    measured = {"sim_requests": float(sim_requests),
                "wall_seconds": float(wall_seconds)}
    if allocations > 0:
        measured["malloc_ns_per_alloc"] = cycles / allocations
    if scaling_efficiency is not None:
        measured["scaling_efficiency"] = float(scaling_efficiency)
    return bench, measured


def check_one(bench, measured, baseline, errors, slowdown=1.0):
    tolerance = dict(DEFAULT_TOLERANCE)
    tolerance.update(baseline.get("tolerance", {}))
    # null tolerance = metric explicitly ungated for this bench.
    tolerance = {k: v for k, v in tolerance.items() if v is not None}
    captured = baseline.get("captured", {})
    for metric, tol in sorted(tolerance.items()):
        base = captured.get(metric)
        got = measured.get(metric)
        if base is None or got is None:
            errors.append((bench, f"metric '{metric}' missing from "
                           f"{'baseline' if base is None else 'bench output'}"))
            continue
        if metric == "malloc_ns_per_alloc":
            got *= slowdown
        # sim_requests is two-sided (any drift is a behavior change);
        # cost metrics only gate the slow direction -- getting faster is
        # the point of the repo -- and higher-is-better metrics only the
        # low side.
        low = base * (1.0 - tol)
        high = base * (1.0 + tol)
        if metric == "sim_requests":
            bad = got < low or got > high
        elif metric in HIGHER_IS_BETTER:
            bad = got < low
        else:
            bad = got > high
        status = "REGRESSION" if bad else "ok"
        print(f"check_bench_regression: {bench}: {metric} "
              f"{got:.6g} vs baseline {base:.6g} "
              f"(band ±{tol:.1%}): {status}")
        if bad:
            errors.append((bench, f"{metric} {got:.6g} outside "
                           f"[{low:.6g}, {high:.6g}]"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of <bench>.json baseline files")
    parser.add_argument("--update", action="store_true",
                        help="write/overwrite baselines from the outputs")
    parser.add_argument("--flags", default="",
                        help="with --update: record the flag string the "
                             "outputs were produced with")
    parser.add_argument("--self-test", action="store_true",
                        help="also require that a synthetic 10%% slowdown "
                             "trips the gate")
    parser.add_argument("outputs", nargs="+",
                        help="bench output files with BENCH_JSON lines")
    args = parser.parse_args()

    parsed = []
    for path in args.outputs:
        try:
            parsed.append(parse_bench_output(path))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"check_bench_regression: {exc}", file=sys.stderr)
            return 1

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for bench, measured in parsed:
            path = os.path.join(args.baselines, f"{bench}.json")
            body = {
                "bench": bench,
                "flags": args.flags,
                "captured": {k: round(v, 6) for k, v in measured.items()},
                "tolerance": DEFAULT_TOLERANCE,
            }
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(body, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"check_bench_regression: wrote {path}")
        return 0

    errors = []
    baselines = {}
    for bench, measured in parsed:
        path = os.path.join(args.baselines, f"{bench}.json")
        try:
            with open(path, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except OSError:
            errors.append((bench, f"no baseline at {path} "
                           "(capture one with --update)"))
            continue
        check_one(bench, measured, baseline, errors)
        baselines[bench] = (path, baseline)

    if errors:
        for bench, error in errors:
            print(f"check_bench_regression: FAIL: {bench}: {error}",
                  file=sys.stderr)
        # Point straight at the offending baseline and how to accept the
        # new numbers, so an INTENDED perf change is a one-liner to land
        # rather than an archaeology session through CI logs.
        outputs_by_bench = dict(zip((b for b, _ in parsed), args.outputs))
        for bench in sorted({b for b, _ in errors}):
            if bench not in baselines:
                continue
            path, baseline = baselines[bench]
            flags = baseline.get("flags", "")
            output = outputs_by_bench.get(bench, f"<{bench} output>")
            print(f"check_bench_regression: offending baseline: {path} "
                  f"(captured with flags: {flags or '<none recorded>'})",
                  file=sys.stderr)
            print(f"check_bench_regression: if this change is intended, "
                  f"re-baseline with: tools/check_bench_regression.py "
                  f"--update --flags '{flags}' {output}", file=sys.stderr)
        return 1

    if args.self_test:
        synthetic = []
        for bench, measured in parsed:
            path = os.path.join(args.baselines, f"{bench}.json")
            with open(path, encoding="utf-8") as handle:
                baseline = json.load(handle)
            check_one(bench, measured, baseline, synthetic, slowdown=1.10)
        if not synthetic:
            print("check_bench_regression: FAIL: synthetic 10% slowdown "
                  "was not caught -- tolerance bands are toothless",
                  file=sys.stderr)
            return 1
        print(f"check_bench_regression: self-test OK (synthetic slowdown "
              f"tripped {len(synthetic)} band(s))")

    print(f"check_bench_regression: OK ({len(parsed)} bench(es) within "
          "tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
