#!/usr/bin/env bash
# Deterministic-mode bit-identity guard.
#
# The simulated execution mode is this repo's oracle: for a pinned fleet
# shape its BENCH_JSON output must be byte-identical for ANY --threads
# value (machine-level parallelism only changes wall clock, never
# results). The real-threads mode (tcmalloc/real_threads.h) must not
# perturb it, so CI runs fig03 and fig_pressure_reclaim at --threads=1
# and --threads=8 and compares their BENCH_JSON streams after masking the
# only legitimately thread-dependent fields: the echoed "threads" count
# and the wall-clock-derived wall_seconds / sim_requests_per_sec.
#
#   cmake -B build -S . && cmake --build build -j
#   tools/check_determinism.sh build

set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
FLAGS="--machines=2 --duration=1 --max-requests=300"
TMPDIR_DET="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_DET"' EXIT

# BENCH_JSON lines with wall-clock and thread-count fields masked. The
# stream line's peak_rss_kb (host RSS) and collector_peak_pending (size
# of the streaming reorder buffer, bounded by 2*threads) legitimately
# vary with the worker count; everything else must not.
normalize() {
  grep '^BENCH_JSON' "$1" | sed -E \
    -e 's/"threads":[0-9]+/"threads":_/' \
    -e 's/"(wall_seconds|sim_requests_per_sec)":[0-9.eE+-]+/"\1":_/g' \
    -e 's/"(peak_rss_kb|collector_peak_pending)":[0-9]+/"\1":_/g'
}

failures=0
checked=0
# fig_scenarios runs all four traffic presets per invocation (diurnal,
# flash-crowd, deploy-wave, antagonist), so the byte-compare covers the
# deploy-wave restart path and antagonist co-location too.
for name in fig03_fleet_cdf fig_pressure_reclaim fig_fleet_timeseries \
            fig_scenarios; do
  bench="$BENCH_DIR/$name"
  if [ ! -x "$bench" ]; then
    echo "check_determinism: missing bench binary $bench" >&2
    failures=$((failures + 1))
    continue
  fi
  o1="$TMPDIR_DET/$name.t1.out"
  o8="$TMPDIR_DET/$name.t8.out"
  p1="$TMPDIR_DET/$name.t1.folded"
  p8="$TMPDIR_DET/$name.t8.folded"
  ts1="$TMPDIR_DET/$name.t1.timeseries.ndjson"
  ts8="$TMPDIR_DET/$name.t8.timeseries.ndjson"
  if ! "$bench" $FLAGS --threads=1 --selfprof="$p1" \
         --timeseries="$ts1" >"$o1" 2>&1 ||
     ! "$bench" $FLAGS --threads=8 --selfprof="$p8" \
         --timeseries="$ts8" >"$o8" 2>&1; then
    echo "check_determinism: $name exited non-zero" >&2
    failures=$((failures + 1))
    continue
  fi
  # The self-profiler samples on a logical cadence (per-process scope
  # entries, never wall clock), so its folded output is part of the
  # oracle too: byte-identical for any --threads, no masking needed.
  if ! cmp -s "$p1" "$p8"; then
    echo "check_determinism: $name --selfprof output differs between" \
         "--threads=1 and --threads=8" >&2
    failures=$((failures + 1))
    continue
  fi
  # The interval series is captured on the logical clock and merged in
  # machine-index order: the --timeseries NDJSON sidecar carries no
  # wall-clock or thread fields, so it is byte-identical, unmasked.
  if ! cmp -s "$ts1" "$ts8"; then
    echo "check_determinism: $name --timeseries output differs between" \
         "--threads=1 and --threads=8" >&2
    failures=$((failures + 1))
    continue
  fi
  normalize "$o1" >"$TMPDIR_DET/$name.t1.norm"
  normalize "$o8" >"$TMPDIR_DET/$name.t8.norm"
  if [ ! -s "$TMPDIR_DET/$name.t1.norm" ]; then
    echo "check_determinism: $name produced no BENCH_JSON lines" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! cmp -s "$TMPDIR_DET/$name.t1.norm" "$TMPDIR_DET/$name.t8.norm"; then
    echo "check_determinism: $name differs between --threads=1 and" \
         "--threads=8:" >&2
    diff "$TMPDIR_DET/$name.t1.norm" "$TMPDIR_DET/$name.t8.norm" | \
      head -10 >&2
    failures=$((failures + 1))
    continue
  fi
  checked=$((checked + 1))
done

if [ "$failures" -ne 0 ]; then
  echo "check_determinism: FAILED ($failures bench(es))"
  exit 1
fi
echo "check_determinism: OK ($checked bench(es) bit-identical across" \
     "--threads)"
