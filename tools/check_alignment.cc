// Standalone false-sharing audit, compiled (syntax-only) by
// tools/check_alignment.sh and the CI alignment-check job.
//
// The real-threads execution mode's scalability rests on a layout
// contract: every structure written by one thread or guarded by one
// shard lock occupies its own cache line(s), so concurrent writers never
// invalidate each other's lines. real_threads.h carries the same
// static_asserts inline; this translation unit re-states them so a
// refactor that weakens the contract (dropping an alignas, growing
// ContendedLock past a line, padding a shard to a non-multiple of 64)
// fails CI even if the inline asserts are edited away in the same change.

#include <atomic>
#include <cstdint>

#include "tcmalloc/real_threads.h"

namespace wsc::tcmalloc {

static_assert(kCacheLineSize == 64,
              "audit assumes 64-byte cache lines; update the asserts if "
              "the constant changes");

// The spinlock every shard embeds: its atomic plus both traffic counters
// must fit in one line so an acquisition touches exactly one line.
static_assert(sizeof(ContendedLock) <= kCacheLineSize,
              "ContendedLock grew past one cache line");

// Per-shard transfer-cache slices: lock, bounds, and stats all live on
// lines private to the shard.
static_assert(alignof(TransferShard) == kCacheLineSize,
              "TransferShard lost its 64-byte alignment");
static_assert(sizeof(TransferShard) % kCacheLineSize == 0,
              "adjacent TransferShards in the grid would share a line");

// Per-shard CFL slices: same contract; these are the hottest locks on
// the refill path.
static_assert(alignof(CflShard) == kCacheLineSize,
              "CflShard lost its 64-byte alignment");
static_assert(sizeof(CflShard) % kCacheLineSize == 0,
              "adjacent CflShards in the grid would share a line");

// Per-thread caches: single-writer counters and freelists must never sit
// on a line another thread's cache starts on.
static_assert(alignof(RealThreadCache) == kCacheLineSize,
              "RealThreadCache lost its 64-byte alignment");

// The lock-free hit path depends on std::atomic<bool> being the plain
// flag it looks like; a locked fallback would add a mutex per shard.
static_assert(std::atomic<bool>::is_always_lock_free,
              "std::atomic<bool> is not lock-free on this target");
static_assert(std::atomic<uintptr_t>::is_always_lock_free,
              "arena bump pointer would take a lock on this target");

}  // namespace wsc::tcmalloc
