#!/usr/bin/env bash
# Compile-time false-sharing audit for the real-threads hot structs.
#
# Compiles tools/check_alignment.cc (static_asserts only, no codegen)
# against the real headers; fails when any hot per-thread/per-shard
# struct loses its 64-byte alignment or a lock grows past one cache
# line. CI runs this as its own job; locally:
#
#   tools/check_alignment.sh
#
# CXX overrides the compiler (defaults to the system c++).

set -eu
cd "$(dirname "$0")/.."

CXX="${CXX:-c++}"
if ! "$CXX" -std=c++20 -fsyntax-only -Isrc tools/check_alignment.cc; then
  echo "check_alignment: FAILED — a hot struct broke the cache-line" \
       "layout contract (see static_assert messages above)" >&2
  exit 1
fi
echo "check_alignment: OK (hot per-thread/per-shard structs are" \
     "cache-line aligned)"
