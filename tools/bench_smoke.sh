#!/usr/bin/env bash
# Smoke-run every bench binary with a tiny fleet and validate the
# machine-readable output. CI runs this on every push; locally:
#
#   cmake -B build -S . && cmake --build build -j
#   tools/bench_smoke.sh build
#
# Each bench runs with --machines=2 --threads=2 and sharply bounded
# request counts, so the whole sweep finishes in minutes; the point is
# exercising every code path and checking the BENCH_JSON schema, not
# reproducing the paper's numbers.

set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
CHECKER="$(dirname "$0")/check_bench_json.py"
FLAGS="--machines=2 --threads=2 --duration=1 --max-requests=300"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: no bench binaries under $BENCH_DIR" >&2
  exit 2
fi

failures=0
ran=0
for bench in "$BENCH_DIR"/fig* "$BENCH_DIR"/table* "$BENCH_DIR"/ablation* \
             "$BENCH_DIR"/extension* "$BENCH_DIR"/sec*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  out="$TMPDIR_SMOKE/$name.out"
  statsz="$TMPDIR_SMOKE/$name.statsz.json"

  # fig11 models hardware latencies only: no allocator, no telemetry line.
  min_lines=2
  statsz_arg="--statsz $statsz"
  if [ "$name" = "fig11_nuca_latency" ]; then
    min_lines=1
    statsz_arg=""
  fi

  echo "=== $name"
  if ! "$bench" $FLAGS --statsz="$statsz" >"$out" 2>&1; then
    echo "bench_smoke: $name exited non-zero" >&2
    tail -20 "$out" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! python3 "$CHECKER" --min-lines "$min_lines" $statsz_arg "$out"; then
    echo "bench_smoke: $name output failed validation" >&2
    grep "^BENCH_JSON" "$out" >&2 || echo "(no BENCH_JSON lines)" >&2
    failures=$((failures + 1))
    continue
  fi
  ran=$((ran + 1))
done

echo
if [ "$failures" -ne 0 ]; then
  echo "bench_smoke: FAILED ($failures bench(es))"
  exit 1
fi
echo "bench_smoke: all $ran benches passed"
