#!/usr/bin/env bash
# Smoke-run every bench binary with a tiny fleet and validate the
# machine-readable output. CI runs this on every push; locally:
#
#   cmake -B build -S . && cmake --build build -j
#   tools/bench_smoke.sh build
#
# Each bench runs with --machines=2 --threads=2 and sharply bounded
# request counts, so the whole sweep finishes in minutes; the point is
# exercising every code path and checking the BENCH_JSON schema, not
# reproducing the paper's numbers.

set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
CHECKER="$(dirname "$0")/check_bench_json.py"
FLAGS="--machines=2 --threads=2 --duration=1 --max-requests=300"
TMPDIR_SMOKE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: no bench binaries under $BENCH_DIR" >&2
  exit 2
fi

failures=0
ran=0
for bench in "$BENCH_DIR"/fig* "$BENCH_DIR"/table* "$BENCH_DIR"/ablation* \
             "$BENCH_DIR"/extension* "$BENCH_DIR"/sec*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  out="$TMPDIR_SMOKE/$name.out"
  statsz="$TMPDIR_SMOKE/$name.statsz.json"

  # fig11 models hardware latencies only: no allocator, no telemetry line.
  min_lines=2
  statsz_arg="--statsz $statsz"
  if [ "$name" = "fig11_nuca_latency" ]; then
    min_lines=1
    statsz_arg=""
  fi
  # fig_mt_scaling defaults to the real-threads allocator, whose statsz
  # dump carries the contention components rather than the simulated
  # tiers; its BENCH_JSON lines are still fully validated (the checker
  # switches required components on the "exec" field).
  if [ "$name" = "fig_mt_scaling" ]; then
    statsz_arg=""
  fi

  echo "=== $name"
  if ! "$bench" $FLAGS --statsz="$statsz" >"$out" 2>&1; then
    echo "bench_smoke: $name exited non-zero" >&2
    tail -20 "$out" >&2
    failures=$((failures + 1))
    continue
  fi
  if ! python3 "$CHECKER" --min-lines "$min_lines" $statsz_arg "$out"; then
    echo "bench_smoke: $name output failed validation" >&2
    grep "^BENCH_JSON" "$out" >&2 || echo "(no BENCH_JSON lines)" >&2
    failures=$((failures + 1))
    continue
  fi
  ran=$((ran + 1))
done

# --trace / --profile smoke: fig03 exercises the fleet path end to end,
# fig04 the raw-allocator path plus the google-benchmark flag handoff
# (its main strips --trace/--profile before benchmark::Initialize sees
# them). Traces must load as Chrome-tracing JSON with events from every
# tier; profiles must attribute >= 95% of live bytes; both must be
# bit-identical across worker-thread counts.
TRACE_CHECKER="$(dirname "$0")/check_trace_json.py"
MALLOCZ="$(dirname "$0")/mallocz.py"
fig03="$BENCH_DIR/fig03_fleet_cdf"
fig04="$BENCH_DIR/fig04_alloc_latency"

if [ -x "$fig03" ]; then
  echo "=== fig03_fleet_cdf --trace/--profile"
  t1="$TMPDIR_SMOKE/fig03.t1.trace.json"
  p1="$TMPDIR_SMOKE/fig03.t1.heap.json"
  t4="$TMPDIR_SMOKE/fig03.t4.trace.json"
  p4="$TMPDIR_SMOKE/fig03.t4.heap.json"
  if ! "$fig03" --machines=2 --threads=1 --duration=1 --max-requests=300 \
         --trace="$t1" --profile="$p1" >/dev/null 2>&1 ||
     ! "$fig03" --machines=2 --threads=4 --duration=1 --max-requests=300 \
         --trace="$t4" --profile="$p4" >/dev/null 2>&1; then
    echo "bench_smoke: fig03 --trace/--profile run failed" >&2
    failures=$((failures + 1))
  else
    if ! python3 "$TRACE_CHECKER" --trace "$t1" --require-tiers \
           --profile "$p1" --min-attribution 0.95; then
      echo "bench_smoke: fig03 trace/profile failed validation" >&2
      failures=$((failures + 1))
    fi
    if ! cmp -s "$t1" "$t4" || ! cmp -s "$p1" "$p4"; then
      echo "bench_smoke: fig03 trace/profile differ across --threads" >&2
      failures=$((failures + 1))
    fi
    if ! python3 "$MALLOCZ" "$p1" --top 5 --trace "$t1" >/dev/null; then
      echo "bench_smoke: mallocz.py failed to render fig03 outputs" >&2
      failures=$((failures + 1))
    fi
  fi

  # Overhead smoke: tracing off must stay within the noise envelope of
  # itself, and tracing on must not blow the run up (the hooks are one
  # branch; rendering happens once at exit). Two untraced runs gauge the
  # noise; the traced run must stay within 5x the slower one plus fixed
  # slack — loose enough never to flake, tight enough to catch tracing
  # accidentally doing per-event work on the hot path.
  wall() { grep '"kind":"throughput"' "$1" | head -1 |
           sed 's/.*"wall_seconds":\([0-9.e+-]*\).*/\1/'; }
  o1="$TMPDIR_SMOKE/fig03.base1.out"; o2="$TMPDIR_SMOKE/fig03.base2.out"
  o3="$TMPDIR_SMOKE/fig03.traced.out"
  "$fig03" $FLAGS >"$o1" 2>&1
  "$fig03" $FLAGS >"$o2" 2>&1
  "$fig03" $FLAGS --trace="$TMPDIR_SMOKE/fig03.ovh.trace.json" >"$o3" 2>&1
  if ! python3 - "$(wall "$o1")" "$(wall "$o2")" "$(wall "$o3")" <<'EOF'
import sys
base1, base2, traced = (float(a) for a in sys.argv[1:4])
budget = 5.0 * max(base1, base2) + 0.5
ok = traced <= budget
print(f"bench_smoke: trace overhead {traced:.3f}s vs untraced "
      f"{base1:.3f}/{base2:.3f}s (budget {budget:.3f}s): "
      f"{'OK' if ok else 'FAILED'}")
sys.exit(0 if ok else 1)
EOF
  then
    failures=$((failures + 1))
  fi
fi

if [ -x "$fig04" ]; then
  echo "=== fig04_alloc_latency --trace/--profile/--timeseries"
  t="$TMPDIR_SMOKE/fig04.trace.json"
  p="$TMPDIR_SMOKE/fig04.heap.json"
  # --timeseries rides along purely as the flag-strip proof: every shared
  # wsc flag (including the newest) must be stripped from argv before
  # benchmark::Initialize rejects it as unrecognized.
  if ! "$fig04" --max-requests=2000 --trace="$t" --profile="$p" \
         --timeseries="$TMPDIR_SMOKE/fig04.ts.ndjson" \
         --benchmark_filter='^$' >/dev/null 2>&1; then
    echo "bench_smoke: fig04 --trace/--profile/--timeseries run failed" \
         "(flag leak into google-benchmark?)" >&2
    failures=$((failures + 1))
  # fig04's exercise is raw Allocate/Free calls with no registered
  # callsites, so only the trace (not attribution) is checked there.
  elif ! python3 "$TRACE_CHECKER" --trace "$t" --require-tiers; then
    echo "bench_smoke: fig04 trace failed validation" >&2
    failures=$((failures + 1))
  fi
fi

# --timeseries smoke: the flagship time-series bench writes the NDJSON
# sidecar, the validator checks the interval/sketch contract, and
# mallocz.py must render it. Overhead is gauged like tracing above: two
# plain fig03 runs bound the noise, the timeseries run must stay within
# 5x the slower one plus fixed slack (the logical-clock capture itself
# is a few map updates per 500ms sim interval — the paper's <2% GWP
# budget — but CI wall-clock noise needs the loose envelope).
fig_ts="$BENCH_DIR/fig_fleet_timeseries"
if [ -x "$fig_ts" ] && [ -x "$fig03" ]; then
  echo "=== fig_fleet_timeseries --timeseries"
  ts="$TMPDIR_SMOKE/fleet.timeseries.ndjson"
  tso="$TMPDIR_SMOKE/fig_ts.out"
  if ! "$fig_ts" $FLAGS --timeseries="$ts" >"$tso" 2>&1; then
    echo "bench_smoke: fig_fleet_timeseries --timeseries run failed" >&2
    failures=$((failures + 1))
  elif ! python3 "$CHECKER" --min-lines 4 --timeseries "$ts" "$tso"; then
    echo "bench_smoke: fig_fleet_timeseries sidecar failed validation" >&2
    failures=$((failures + 1))
  elif ! python3 "$MALLOCZ" --timeseries "$ts" >/dev/null; then
    echo "bench_smoke: mallocz.py failed to render the timeseries" >&2
    failures=$((failures + 1))
  fi

  o1="$TMPDIR_SMOKE/fig03.ts_base1.out"; o2="$TMPDIR_SMOKE/fig03.ts_base2.out"
  o3="$TMPDIR_SMOKE/fig03.ts_on.out"
  "$fig03" $FLAGS >"$o1" 2>&1
  "$fig03" $FLAGS >"$o2" 2>&1
  "$fig03" $FLAGS --timeseries="$TMPDIR_SMOKE/fig03.ovh.ts.ndjson" >"$o3" 2>&1
  if ! python3 - "$(wall "$o1")" "$(wall "$o2")" "$(wall "$o3")" <<'EOF'
import sys
base1, base2, with_ts = (float(a) for a in sys.argv[1:4])
budget = 5.0 * max(base1, base2) + 0.5
ok = with_ts <= budget
print(f"bench_smoke: timeseries overhead {with_ts:.3f}s vs plain "
      f"{base1:.3f}/{base2:.3f}s (budget {budget:.3f}s): "
      f"{'OK' if ok else 'FAILED'}")
sys.exit(0 if ok else 1)
EOF
  then
    failures=$((failures + 1))
  fi
fi

echo
if [ "$failures" -ne 0 ]; then
  echo "bench_smoke: FAILED ($failures bench(es))"
  exit 1
fi
echo "bench_smoke: all $ran benches passed (+ trace/profile/timeseries smoke)"
