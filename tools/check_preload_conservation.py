#!/usr/bin/env python3
"""Asserts allocation/free conservation from a preload-bench stats sidecar.

bench/preload/bench_mt with --out-dir writes DIR/mt.stats.json: one
{"phase": "pre"|"post", "stats": {...}} line per snapshot, taken around
the measured region via wscmalloc_stats_json(). Every object allocated
between the snapshots is freed before the "post" snapshot (the bench
scopes its harness containers accordingly), so the deltas must balance
exactly: a shortfall means the shim lost frees (leak), an excess means it
double-counted.

Usage: check_preload_conservation.py <stats.json> [min_ops]

Self-test: check_preload_conservation.py --self-test
"""

import json
import sys


def parse(path):
    pre = post = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec["phase"] == "pre" and pre is None:
                pre = rec["stats"]
            elif rec["phase"] == "post":
                post = rec["stats"]
    if pre is None or post is None:
        sys.exit(f"FAIL: {path} lacks pre/post snapshots")
    return pre, post


def check(pre, post, min_ops):
    d_alloc = post["allocations"] - pre["allocations"]
    d_free = post["frees"] - pre["frees"]
    if d_alloc != d_free:
        sys.exit(f"FAIL: allocations delta {d_alloc} != frees delta {d_free} "
                 f"(leaked {d_alloc - d_free})")
    if d_alloc < min_ops:
        sys.exit(f"FAIL: only {d_alloc} allocations between snapshots, "
                 f"expected >= {min_ops} — did the workload run?")
    if post["live_bytes"] != pre["live_bytes"]:
        sys.exit(f"FAIL: live_bytes moved {pre['live_bytes']} -> "
                 f"{post['live_bytes']} across a balanced run")
    return d_alloc


def self_test():
    ok_pre = {"allocations": 10, "frees": 7, "live_bytes": 100}
    ok_post = {"allocations": 1010, "frees": 1007, "live_bytes": 100}
    assert check(ok_pre, ok_post, 1000) == 1000
    for bad_post, why in [
        ({"allocations": 1010, "frees": 1006, "live_bytes": 100}, "leak"),
        ({"allocations": 11, "frees": 8, "live_bytes": 100}, "too few ops"),
        ({"allocations": 1010, "frees": 1007, "live_bytes": 200},
         "live_bytes drift"),
    ]:
        try:
            check(ok_pre, bad_post, 1000)
        except SystemExit:
            continue
        raise AssertionError(f"self-test: {why} not caught")
    print("check_preload_conservation: self-test OK")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    min_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    pre, post = parse(sys.argv[1])
    ops = check(pre, post, min_ops)
    print(f"check_preload_conservation: OK ({ops} allocations == frees, "
          f"live_bytes stable at {post['live_bytes']})")


if __name__ == "__main__":
    main()
