#!/usr/bin/env python3
"""Render a folded-stack profile as a standalone flame-graph SVG.

Input is the Brendan Gregg folded format emitted by --selfprof:

    outer;inner;leaf 1234

one exact stack per line with its sample count. The simulator's profiles
are deterministic (logical sampling cadence), so the same build renders
the same SVG byte-for-byte.

Usage:
  tools/flamegraph.py profile.folded --out profile.svg
  tools/flamegraph.py profile.folded --title "fig03 head" --width 1600
  tools/flamegraph.py --self-test

--min-percent drops frames narrower than the given share of total
samples (default 0.1) to keep SVGs small. --self-test renders a
synthetic profile in-memory and asserts the expected frames appear.

Exit status: 0 on success (and on a passing --self-test); 1 otherwise.
"""

import argparse
import hashlib
import html
import sys


def parse_folded(text):
    """Parses folded text into {(frame, frame, ...): count}."""
    stacks = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack_part, sep, count_part = line.rpartition(" ")
        if not sep:
            raise ValueError(f"line {lineno}: no sample count: {line!r}")
        try:
            count = int(count_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample count {count_part!r}") from None
        frames = tuple(stack_part.split(";"))
        stacks[frames] = stacks.get(frames, 0) + count
    return stacks


class Node:
    """One frame box in the flame graph tree."""

    __slots__ = ("name", "self_count", "children")

    def __init__(self, name):
        self.name = name
        self.self_count = 0
        self.children = {}

    def total(self):
        return self.self_count + sum(c.total() for c in self.children.values())


def build_tree(stacks):
    root = Node("root")
    for frames, count in stacks.items():
        node = root
        for frame in frames:
            node = node.children.setdefault(frame, Node(frame))
        node.self_count += count
    return root


def frame_color(name):
    """Deterministic warm-palette color hashed from the frame name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    red = 205 + digest[0] % 50
    green = 30 + digest[1] % 160
    blue = digest[2] % 55
    return f"rgb({red},{green},{blue})"


# Layout constants shared with flamediff's SVG output.
FRAME_HEIGHT = 17
FONT_SIZE = 11
CHAR_WIDTH = 6.5  # approx monospace advance at FONT_SIZE
MARGIN = 10
TITLE_HEIGHT = 28
FOOTER_HEIGHT = 22


def _depth(node):
    if not node.children:
        return 0
    return 1 + max(_depth(c) for c in node.children.values())


def render_svg(stacks, title, width=1200, min_percent=0.1, color_fn=None,
               subtitle=None):
    """Renders folded stacks into a standalone SVG string.

    color_fn(frame_name) may override the default palette; flamediff uses
    it to paint frames by regression delta.
    """
    if color_fn is None:
        color_fn = frame_color
    root = build_tree(stacks)
    total = root.total()
    if total == 0:
        raise ValueError("profile has no samples")
    depth = _depth(root)
    height = TITLE_HEIGHT + (depth + 1) * FRAME_HEIGHT + FOOTER_HEIGHT
    plot_width = width - 2 * MARGIN
    min_width = plot_width * (min_percent / 100.0)

    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" '
        f'font-size="{FONT_SIZE}">')
    out.append(
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        f'fill="#f8f8f8"/>')
    out.append(
        f'<text x="{width / 2:.1f}" y="{TITLE_HEIGHT - 10}" '
        f'text-anchor="middle" font-size="14">{html.escape(title)}</text>')

    # Root row spans the whole plot ("all samples"), children stack above.
    base_y = height - FOOTER_HEIGHT - FRAME_HEIGHT
    out.append("<g>")
    out.append(f"<title>all ({total} samples, 100.00%)</title>")
    out.append(
        f'<rect x="{MARGIN}" y="{base_y}" width="{plot_width:.2f}" '
        f'height="{FRAME_HEIGHT - 1}" fill="#bbb" rx="2" data-frame="all"/>')
    out.append(
        f'<text x="{MARGIN + 3}" y="{base_y + FRAME_HEIGHT - 5}">'
        f"all ({total} samples)</text>")
    out.append("</g>")

    # Flame graphs grow upward: deepest frames at the top. Easiest stable
    # layout here is to emit top-down rows, then flip y per depth.
    rows = []

    def collect(node, x, depth_idx, node_total):
        box_width = plot_width * node_total / total
        if box_width < min_width:
            return
        rows.append((node, x, depth_idx, node_total))
        child_x = x
        for name in sorted(node.children):
            child = node.children[name]
            child_total = child.total()
            collect(child, child_x, depth_idx + 1, child_total)
            child_x += plot_width * child_total / total

    child_x = MARGIN
    for name in sorted(root.children):
        child = root.children[name]
        child_total = child.total()
        collect(child, child_x, 0, child_total)
        child_x += plot_width * child_total / total

    for node, x, depth_idx, node_total in rows:
        y = base_y - (depth_idx + 1) * FRAME_HEIGHT
        box_width = plot_width * node_total / total
        share = 100.0 * node_total / total
        label = f"{node.name} ({node_total} samples, {share:.2f}%)"
        out.append("<g>")
        out.append(f"<title>{html.escape(label)}</title>")
        out.append(
            f'<rect x="{x:.2f}" y="{y}" width="{box_width:.2f}" '
            f'height="{FRAME_HEIGHT - 1}" fill="{color_fn(node.name)}" '
            f'rx="2" data-frame="{html.escape(node.name)}"/>')
        max_chars = int((box_width - 4) / CHAR_WIDTH)
        if max_chars >= 3:
            text = node.name
            if len(text) > max_chars:
                text = text[: max_chars - 2] + ".."
            out.append(
                f'<text x="{x + 3:.2f}" y="{y + FRAME_HEIGHT - 5}" '
                f'fill="#000">{html.escape(text)}</text>')
        out.append("</g>")

    footer = subtitle or f"{total} samples, {len(stacks)} unique stacks"
    out.append(
        f'<text x="{MARGIN}" y="{height - 7}" fill="#666">'
        f"{html.escape(footer)}</text>")
    out.append("</svg>")
    return "\n".join(out) + "\n"


def self_test():
    folded = (
        "main;alloc;fast 700\n"
        "main;alloc;slow;refill 100\n"
        "main;free 200\n"
    )
    stacks = parse_folded(folded)
    assert sum(stacks.values()) == 1000, stacks
    svg = render_svg(stacks, title="self-test", width=800, min_percent=0.0)
    for frame in ("main", "alloc", "fast", "slow", "refill", "free"):
        assert f'data-frame="{frame}"' in svg, f"frame {frame} missing"
    assert svg.startswith("<svg "), "not an SVG"
    assert "700 samples" in svg, "sample counts missing from titles"
    # Duplicate stacks accumulate, comments and blank lines are ignored.
    merged = parse_folded("# comment\n\na;b 1\na;b 2\n")
    assert merged == {("a", "b"): 3}, merged
    # min_percent prunes narrow frames.
    pruned = render_svg(stacks, title="t", width=800, min_percent=15.0)
    assert 'data-frame="refill"' not in pruned, "min-percent did not prune"
    assert 'data-frame="fast"' in pruned
    print("flamegraph.py: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("folded", nargs="?", help="folded profile file")
    parser.add_argument("--out", help="output SVG path (default stdout)")
    parser.add_argument("--title", default=None, help="SVG title")
    parser.add_argument("--width", type=int, default=1200)
    parser.add_argument("--min-percent", type=float, default=0.1,
                        help="hide frames narrower than this %% of samples")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.folded:
        parser.error("a folded profile file is required (or --self-test)")

    with open(args.folded, encoding="utf-8") as f:
        stacks = parse_folded(f.read())
    title = args.title if args.title is not None else args.folded
    svg = render_svg(stacks, title=title, width=args.width,
                     min_percent=args.min_percent)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(svg)
        print(f"flamegraph: wrote {args.out}")
    else:
        sys.stdout.write(svg)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not a render failure.
        sys.exit(0)
