#!/usr/bin/env python3
"""Validate BENCH_JSON lines emitted by the bench binaries.

Every bench prints machine-readable `BENCH_JSON {...}` lines through the
schema-versioned serializer in bench/bench_util.h. CI pipes each bench's
output through this checker; it also validates --statsz JSON dumps and
--timeseries NDJSON sidecar files.

Usage:
  some_bench | tools/check_bench_json.py [--min-lines N] [--statsz FILE]
  tools/check_bench_json.py --min-lines 2 < bench_output.txt
  tools/check_bench_json.py --timeseries out/timeseries.ndjson /dev/null

Line kinds validated: throughput, telemetry, timeseries (per-interval
counter deltas, monotone interval index), sketch (quantile-sketch
summaries), stream (streaming-collector bookkeeping), scenario
(traffic-scenario leg bookkeeping from fig_scenarios), preload and
skipped (bench/preload/compare_allocators.sh arms). timeseries, sketch,
preload and skipped lines carry no "threads" field by design —
timeseries output is byte-identical for any --threads, and the preload
arms come from a shell driver.

Exit status is non-zero when any line is malformed or fewer than
--min-lines BENCH_JSON lines were seen.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 2
TELEMETRY_SCHEMA_VERSION = 1

# The allocator tiers the paper's telemetry reports on, plus the
# memory-pressure control plane, the heap/lifetime sampler, and the
# failure/recovery counters. Every telemetry line from a full allocator
# snapshot must cover all of them ("pressure", "sampler", and "failure"
# counters are registered at allocator construction, so they appear even
# when no limit was ever set, nothing was sampled, and nothing failed).
# The tiers are a deterministic-simulation contract only: telemetry lines
# tagged "exec":"real-threads" come from the real-concurrency allocator
# (tcmalloc/real_threads.h), which instead must report its "contention"
# component (lock acquisitions, refill stalls, work steals).
REQUIRED_TIERS = (
    "cpu_cache",
    "transfer_cache",
    "central_free_list",
    "huge_page_filler",
    "huge_cache",
    "page_heap",
    "pressure",
    "sampler",
    "failure",
)

REAL_THREADS_COMPONENTS = ("contention",)

EXEC_MODES = ("simulated", "real-threads")

THROUGHPUT_FIELDS = ("sim_requests", "wall_seconds", "sim_requests_per_sec")

KNOWN_KINDS = ("throughput", "telemetry", "timeseries", "sketch", "stream",
               "scenario", "preload", "skipped")

# Names fig_scenarios accepts via --scenario= (fleet::ScenarioNames()).
SCENARIO_NAMES = ("diurnal", "flash-crowd", "deploy-wave", "antagonist")

# Kinds whose lines intentionally omit "threads": timeseries/sketch lines
# must be byte-identical for any --threads (check_determinism.sh diffs
# them), preload/skipped lines come from the compare_allocators.sh shell
# driver which has no thread concept of its own.
NO_THREADS_KINDS = ("timeseries", "sketch", "preload", "skipped")

# Components that must appear in every full-snapshot timeseries interval
# (same contract as REQUIRED_TIERS for telemetry lines; the allocator
# registers all of them at construction, so they are present even when
# their counters never moved).
TIMESERIES_REQUIRED_COMPONENTS = ("allocator", "pressure", "failure")


def fail(errors, line_no, message):
    errors.append(f"line {line_no}: {message}")


def check_common(errors, line_no, obj):
    if obj.get("schema_version") != SCHEMA_VERSION:
        fail(errors, line_no,
             f"schema_version {obj.get('schema_version')!r} != {SCHEMA_VERSION}")
    if not isinstance(obj.get("bench"), str) or not obj["bench"]:
        fail(errors, line_no, "missing or empty 'bench'")
    if obj.get("kind") not in KNOWN_KINDS:
        fail(errors, line_no, f"unknown kind {obj.get('kind')!r}")
    if obj.get("kind") not in NO_THREADS_KINDS:
        if not isinstance(obj.get("threads"), int) or obj["threads"] < 1:
            fail(errors, line_no, f"bad 'threads': {obj.get('threads')!r}")
    if "exec" in obj and obj["exec"] not in EXEC_MODES:
        fail(errors, line_no, f"unknown exec mode {obj.get('exec')!r}")


def check_throughput(errors, line_no, obj):
    for field in THROUGHPUT_FIELDS:
        value = obj.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            fail(errors, line_no, f"bad '{field}': {value!r}")


def check_telemetry(errors, line_no, obj):
    if obj.get("schema_telemetry") != TELEMETRY_SCHEMA_VERSION:
        fail(errors, line_no,
             f"schema_telemetry {obj.get('schema_telemetry')!r} != "
             f"{TELEMETRY_SCHEMA_VERSION}")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(errors, line_no, "missing or empty 'metrics' object")
        return
    for key, value in metrics.items():
        if "/" not in key:
            fail(errors, line_no, f"metric key {key!r} is not component/name")
        if not isinstance(value, (int, float)):
            fail(errors, line_no, f"metric {key!r} has non-numeric value")
    components = {key.split("/", 1)[0] for key in metrics}
    required = (REAL_THREADS_COMPONENTS
                if obj.get("exec") == "real-threads" else REQUIRED_TIERS)
    missing = [tier for tier in required if tier not in components]
    if missing:
        fail(errors, line_no, f"telemetry missing tiers: {', '.join(missing)}")
    if "arm" in obj and (not isinstance(obj["arm"], str) or not obj["arm"]):
        fail(errors, line_no, "bad 'arm' label")


def check_timeseries(errors, line_no, obj, last_intervals):
    """One kind=timeseries line: a per-interval delta snapshot.

    last_intervals maps (bench, arm) -> previous interval index so the
    strictly-monotone contract is checked across the whole stream.
    """
    interval = obj.get("interval")
    if not isinstance(interval, int) or interval < 0:
        fail(errors, line_no, f"bad 'interval': {interval!r}")
        return
    key = (obj.get("bench"), obj.get("arm", ""))
    prev = last_intervals.get(key)
    if prev is not None and interval <= prev:
        fail(errors, line_no,
             f"interval index not monotone: {interval} after {prev}")
    last_intervals[key] = interval
    t_seconds = obj.get("t_seconds")
    if not isinstance(t_seconds, (int, float)) or t_seconds < 0:
        fail(errors, line_no, f"bad 't_seconds': {t_seconds!r}")
    counters = obj.get("counters")
    if not isinstance(counters, dict):
        fail(errors, line_no, "missing 'counters' object")
        return
    for name, delta in counters.items():
        if "/" not in name:
            fail(errors, line_no, f"counter key {name!r} is not component/name")
        if not isinstance(delta, int) or delta < 0:
            fail(errors, line_no, f"counter {name!r} delta {delta!r} "
                 "is not a non-negative integer")
    gauges = obj.get("gauges")
    if not isinstance(gauges, dict):
        fail(errors, line_no, "missing 'gauges' object")
        return
    for name, value in gauges.items():
        if not isinstance(value, (int, float)):
            fail(errors, line_no, f"gauge {name!r} has non-numeric value")
    components = {k.split("/", 1)[0] for k in counters} | \
                 {k.split("/", 1)[0] for k in gauges}
    missing = [c for c in TIMESERIES_REQUIRED_COMPONENTS
               if c not in components]
    if missing:
        fail(errors, line_no,
             f"timeseries missing components: {', '.join(missing)}")
    for name, hist in obj.get("histograms", {}).items():
        if not isinstance(hist.get("count"), int) or hist["count"] < 0:
            fail(errors, line_no, f"histogram {name!r} bad 'count'")
        buckets = hist.get("buckets")
        if not isinstance(buckets, list) or any(
                not isinstance(b, int) or b < 0 for b in buckets):
            fail(errors, line_no, f"histogram {name!r} bad 'buckets'")


def check_sketch(errors, line_no, obj):
    if not isinstance(obj.get("name"), str) or not obj["name"]:
        fail(errors, line_no, "sketch missing 'name'")
    sketch = obj.get("sketch")
    if not isinstance(sketch, dict):
        fail(errors, line_no, "missing 'sketch' object")
        return
    count = sketch.get("count")
    if not isinstance(count, int) or count < 0:
        fail(errors, line_no, f"sketch bad 'count': {count!r}")
    quantiles = sketch.get("quantiles")
    if not isinstance(quantiles, dict):
        fail(errors, line_no, "sketch missing 'quantiles'")
    elif count > 0:
        order = [quantiles.get(q) for q in ("p50", "p90", "p95", "p99")]
        if any(not isinstance(v, (int, float)) for v in order):
            fail(errors, line_no, f"sketch quantiles not numeric: {quantiles!r}")
        elif any(a > b for a, b in zip(order, order[1:])):
            fail(errors, line_no, f"sketch quantiles not monotone: {order!r}")
    points = sketch.get("points")
    if not isinstance(points, list) or any(
            not (isinstance(p, list) and len(p) == 2 and
                 isinstance(p[1], int) and p[1] > 0) for p in points):
        fail(errors, line_no, "sketch 'points' is not a [value,count] list")
    elif count > 0 and sum(p[1] for p in points) != count:
        fail(errors, line_no, "sketch point counts do not sum to 'count'")


def check_stream(errors, line_no, obj):
    for field in ("machines", "processes", "total_requests", "intervals",
                  "collector_peak_pending", "peak_rss_kb"):
        value = obj.get(field)
        if not isinstance(value, int) or value < 0:
            fail(errors, line_no, f"bad '{field}': {value!r}")


def check_scenario(errors, line_no, obj):
    """One kind=scenario line: a fig_scenarios leg's bookkeeping.

    Every field is deterministic across --threads values (host-dependent
    fields like peak_rss_kb intentionally stay on the human-readable
    lines), so this line is part of the determinism byte-compare.
    """
    if obj.get("scenario") not in SCENARIO_NAMES:
        fail(errors, line_no, f"unknown scenario {obj.get('scenario')!r}")
    for field in ("machines", "processes", "total_requests", "oom_kills",
                  "deploy_restarts", "antagonists", "failed_allocations",
                  "intervals"):
        value = obj.get(field)
        if not isinstance(value, int) or value < 0:
            fail(errors, line_no, f"bad '{field}': {value!r}")
    if obj.get("scenario") == "deploy-wave" and obj.get(
            "deploy_restarts") == 0:
        fail(errors, line_no, "deploy-wave leg saw no deploy restarts")


def check_preload(errors, line_no, obj):
    for field in ("arm", "bench_binary", "allocator"):
        if not isinstance(obj.get(field), str) or not obj[field]:
            fail(errors, line_no, f"preload missing '{field}'")
    ns_per_op = obj.get("ns_per_op")
    if not isinstance(ns_per_op, (int, float)) or ns_per_op <= 0:
        fail(errors, line_no, f"preload bad 'ns_per_op': {ns_per_op!r}")


def check_skipped(errors, line_no, obj):
    for field in ("arm", "reason"):
        if not isinstance(obj.get(field), str) or not obj[field]:
            fail(errors, line_no, f"skipped line missing '{field}'")


def check_timeseries_file(errors, path):
    """--timeseries FILE: a RenderNdjson sidecar (no BENCH_JSON prefix)."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        errors.append(f"timeseries {path}: {exc}")
        return 0
    last_intervals = {}
    file_errors = []
    kinds = {"timeseries": 0, "sketch": 0}
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(file_errors, line_no, f"invalid JSON: {exc}")
            continue
        check_common(file_errors, line_no, obj)
        kind = obj.get("kind")
        if kind == "timeseries":
            kinds["timeseries"] += 1
            check_timeseries(file_errors, line_no, obj, last_intervals)
        elif kind == "sketch":
            kinds["sketch"] += 1
            check_sketch(file_errors, line_no, obj)
        else:
            fail(file_errors, line_no,
                 f"unexpected kind {kind!r} in timeseries file")
    if kinds["timeseries"] == 0:
        file_errors.append("no timeseries lines in file")
    errors.extend(f"timeseries {path}: {e}" for e in file_errors)
    return kinds["timeseries"] + kinds["sketch"]


def check_statsz(errors, path):
    try:
        with open(path, encoding="utf-8") as handle:
            dump = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"statsz {path}: {exc}")
        return
    if dump.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        errors.append(f"statsz {path}: bad schema_version "
                      f"{dump.get('schema_version')!r}")
    metrics = dump.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append(f"statsz {path}: missing or empty 'metrics'")
        return
    components = set()
    for i, metric in enumerate(metrics):
        for field in ("component", "name", "kind"):
            if not isinstance(metric.get(field), str) or not metric[field]:
                errors.append(f"statsz {path}: metric {i} bad '{field}'")
        if metric.get("kind") == "histogram":
            if not isinstance(metric.get("buckets"), list):
                errors.append(f"statsz {path}: metric {i} missing buckets")
            bounds = metric.get("bounds", [])
            if len(metric.get("buckets", [])) != len(bounds) + 1:
                errors.append(f"statsz {path}: metric {i} bucket/bound "
                              "count mismatch")
        elif "value" not in metric:
            errors.append(f"statsz {path}: metric {i} missing value")
        components.add(metric.get("component"))
    missing = [tier for tier in REQUIRED_TIERS if tier not in components]
    if missing:
        errors.append(f"statsz {path}: missing tiers: {', '.join(missing)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum number of BENCH_JSON lines expected")
    parser.add_argument("--statsz", default=None,
                        help="also validate this statsz JSON dump")
    parser.add_argument("--timeseries", default=None,
                        help="also validate this --timeseries NDJSON file")
    parser.add_argument("input", nargs="?", default="-",
                        help="bench output file ('-' = stdin)")
    args = parser.parse_args()

    stream = sys.stdin if args.input == "-" else open(args.input,
                                                      encoding="utf-8")
    errors = []
    seen = 0
    kinds = {kind: 0 for kind in KNOWN_KINDS}
    last_intervals = {}
    with stream:
        for line_no, line in enumerate(stream, start=1):
            if not line.startswith("BENCH_JSON "):
                continue
            seen += 1
            try:
                obj = json.loads(line[len("BENCH_JSON "):])
            except json.JSONDecodeError as exc:
                fail(errors, line_no, f"invalid JSON: {exc}")
                continue
            check_common(errors, line_no, obj)
            kind = obj.get("kind")
            if kind in kinds:
                kinds[kind] += 1
            if kind == "throughput":
                check_throughput(errors, line_no, obj)
            elif kind == "telemetry":
                check_telemetry(errors, line_no, obj)
            elif kind == "timeseries":
                check_timeseries(errors, line_no, obj, last_intervals)
            elif kind == "sketch":
                check_sketch(errors, line_no, obj)
            elif kind == "stream":
                check_stream(errors, line_no, obj)
            elif kind == "scenario":
                check_scenario(errors, line_no, obj)
            elif kind == "preload":
                check_preload(errors, line_no, obj)
            elif kind == "skipped":
                check_skipped(errors, line_no, obj)

    if seen < args.min_lines:
        errors.append(f"saw {seen} BENCH_JSON line(s), expected at least "
                      f"{args.min_lines}")
    if args.statsz:
        check_statsz(errors, args.statsz)
    ts_lines = 0
    if args.timeseries:
        ts_lines = check_timeseries_file(errors, args.timeseries)

    if errors:
        for error in errors:
            print(f"check_bench_json: {error}", file=sys.stderr)
        return 1
    summary = ", ".join(f"{count} {kind}" for kind, count in kinds.items()
                        if count > 0) or "none"
    print(f"check_bench_json: OK ({seen} line(s): {summary}"
          + (", statsz valid" if args.statsz else "")
          + (f", timeseries file valid ({ts_lines} lines)"
             if args.timeseries else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
