#!/usr/bin/env python3
"""Validate BENCH_JSON lines emitted by the bench binaries.

Every bench prints machine-readable `BENCH_JSON {...}` lines through the
schema-versioned serializer in bench/bench_util.h. CI pipes each bench's
output through this checker; it also validates --statsz JSON dumps.

Usage:
  some_bench | tools/check_bench_json.py [--min-lines N] [--statsz FILE]
  tools/check_bench_json.py --min-lines 2 < bench_output.txt

Exit status is non-zero when any line is malformed or fewer than
--min-lines BENCH_JSON lines were seen.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 2
TELEMETRY_SCHEMA_VERSION = 1

# The allocator tiers the paper's telemetry reports on, plus the
# memory-pressure control plane, the heap/lifetime sampler, and the
# failure/recovery counters. Every telemetry line from a full allocator
# snapshot must cover all of them ("pressure", "sampler", and "failure"
# counters are registered at allocator construction, so they appear even
# when no limit was ever set, nothing was sampled, and nothing failed).
# The tiers are a deterministic-simulation contract only: telemetry lines
# tagged "exec":"real-threads" come from the real-concurrency allocator
# (tcmalloc/real_threads.h), which instead must report its "contention"
# component (lock acquisitions, refill stalls, work steals).
REQUIRED_TIERS = (
    "cpu_cache",
    "transfer_cache",
    "central_free_list",
    "huge_page_filler",
    "huge_cache",
    "page_heap",
    "pressure",
    "sampler",
    "failure",
)

REAL_THREADS_COMPONENTS = ("contention",)

EXEC_MODES = ("simulated", "real-threads")

THROUGHPUT_FIELDS = ("sim_requests", "wall_seconds", "sim_requests_per_sec")


def fail(errors, line_no, message):
    errors.append(f"line {line_no}: {message}")


def check_common(errors, line_no, obj):
    if obj.get("schema_version") != SCHEMA_VERSION:
        fail(errors, line_no,
             f"schema_version {obj.get('schema_version')!r} != {SCHEMA_VERSION}")
    if not isinstance(obj.get("bench"), str) or not obj["bench"]:
        fail(errors, line_no, "missing or empty 'bench'")
    if obj.get("kind") not in ("throughput", "telemetry"):
        fail(errors, line_no, f"unknown kind {obj.get('kind')!r}")
    if not isinstance(obj.get("threads"), int) or obj["threads"] < 1:
        fail(errors, line_no, f"bad 'threads': {obj.get('threads')!r}")
    if "exec" in obj and obj["exec"] not in EXEC_MODES:
        fail(errors, line_no, f"unknown exec mode {obj.get('exec')!r}")


def check_throughput(errors, line_no, obj):
    for field in THROUGHPUT_FIELDS:
        value = obj.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            fail(errors, line_no, f"bad '{field}': {value!r}")


def check_telemetry(errors, line_no, obj):
    if obj.get("schema_telemetry") != TELEMETRY_SCHEMA_VERSION:
        fail(errors, line_no,
             f"schema_telemetry {obj.get('schema_telemetry')!r} != "
             f"{TELEMETRY_SCHEMA_VERSION}")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(errors, line_no, "missing or empty 'metrics' object")
        return
    for key, value in metrics.items():
        if "/" not in key:
            fail(errors, line_no, f"metric key {key!r} is not component/name")
        if not isinstance(value, (int, float)):
            fail(errors, line_no, f"metric {key!r} has non-numeric value")
    components = {key.split("/", 1)[0] for key in metrics}
    required = (REAL_THREADS_COMPONENTS
                if obj.get("exec") == "real-threads" else REQUIRED_TIERS)
    missing = [tier for tier in required if tier not in components]
    if missing:
        fail(errors, line_no, f"telemetry missing tiers: {', '.join(missing)}")
    if "arm" in obj and (not isinstance(obj["arm"], str) or not obj["arm"]):
        fail(errors, line_no, "bad 'arm' label")


def check_statsz(errors, path):
    try:
        with open(path, encoding="utf-8") as handle:
            dump = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"statsz {path}: {exc}")
        return
    if dump.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        errors.append(f"statsz {path}: bad schema_version "
                      f"{dump.get('schema_version')!r}")
    metrics = dump.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        errors.append(f"statsz {path}: missing or empty 'metrics'")
        return
    components = set()
    for i, metric in enumerate(metrics):
        for field in ("component", "name", "kind"):
            if not isinstance(metric.get(field), str) or not metric[field]:
                errors.append(f"statsz {path}: metric {i} bad '{field}'")
        if metric.get("kind") == "histogram":
            if not isinstance(metric.get("buckets"), list):
                errors.append(f"statsz {path}: metric {i} missing buckets")
            bounds = metric.get("bounds", [])
            if len(metric.get("buckets", [])) != len(bounds) + 1:
                errors.append(f"statsz {path}: metric {i} bucket/bound "
                              "count mismatch")
        elif "value" not in metric:
            errors.append(f"statsz {path}: metric {i} missing value")
        components.add(metric.get("component"))
    missing = [tier for tier in REQUIRED_TIERS if tier not in components]
    if missing:
        errors.append(f"statsz {path}: missing tiers: {', '.join(missing)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum number of BENCH_JSON lines expected")
    parser.add_argument("--statsz", default=None,
                        help="also validate this statsz JSON dump")
    parser.add_argument("input", nargs="?", default="-",
                        help="bench output file ('-' = stdin)")
    args = parser.parse_args()

    stream = sys.stdin if args.input == "-" else open(args.input,
                                                      encoding="utf-8")
    errors = []
    seen = 0
    kinds = {"throughput": 0, "telemetry": 0}
    with stream:
        for line_no, line in enumerate(stream, start=1):
            if not line.startswith("BENCH_JSON "):
                continue
            seen += 1
            try:
                obj = json.loads(line[len("BENCH_JSON "):])
            except json.JSONDecodeError as exc:
                fail(errors, line_no, f"invalid JSON: {exc}")
                continue
            check_common(errors, line_no, obj)
            kind = obj.get("kind")
            if kind in kinds:
                kinds[kind] += 1
            if kind == "throughput":
                check_throughput(errors, line_no, obj)
            elif kind == "telemetry":
                check_telemetry(errors, line_no, obj)

    if seen < args.min_lines:
        errors.append(f"saw {seen} BENCH_JSON line(s), expected at least "
                      f"{args.min_lines}")
    if args.statsz:
        check_statsz(errors, args.statsz)

    if errors:
        for error in errors:
            print(f"check_bench_json: {error}", file=sys.stderr)
        return 1
    print(f"check_bench_json: OK ({seen} line(s): "
          f"{kinds['throughput']} throughput, {kinds['telemetry']} telemetry"
          + (", statsz valid" if args.statsz else "") + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
