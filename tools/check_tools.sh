#!/usr/bin/env bash
# Tools lint: every tools/*.py must at least byte-compile, and the tools
# that carry a standalone --self-test must pass it.
#
# The perf gate, the flamediff gate, and the JSON validators are all
# Python: a syntax error in one of them would otherwise surface as a
# mysterious red CI job long after the commit that broke it. This script
# is the cheap tripwire — no build needed, runs in seconds.
#
#   tools/check_tools.sh
#
# Exit status: 0 when every tool compiles and every self-test passes.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAIL=0

for tool in "$ROOT"/tools/*.py; do
  if python3 -m py_compile "$tool"; then
    echo "check_tools: compile OK: ${tool#"$ROOT"/}"
  else
    echo "check_tools: FAIL: ${tool#"$ROOT"/} does not compile"
    FAIL=1
  fi
done

# Standalone self-tests (tools whose --self-test needs no input files;
# check_bench_regression.py's self-test needs bench output and runs in
# the perf-gate job instead).
for tool in flamegraph.py flamediff.py check_preload_conservation.py \
            check_openmetrics.py; do
  if python3 "$ROOT/tools/$tool" --self-test; then
    echo "check_tools: self-test OK: tools/$tool"
  else
    echo "check_tools: FAIL: tools/$tool --self-test"
    FAIL=1
  fi
done

if [ "$FAIL" -ne 0 ]; then
  echo "check_tools: FAIL"
  exit 1
fi
echo "check_tools: OK"
