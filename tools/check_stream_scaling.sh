#!/usr/bin/env bash
# Stream-collector scaling smoke: collector memory must not scale with
# the fleet.
#
# The whole point of Fleet::RunStreaming + StreamCollector is warehouse
# scale: per-machine observations are folded and discarded, so process
# peak RSS is set by the few concurrently-executing machines and the
# O(metrics x intervals) aggregate — never by --machines. This script
# runs the flagship time-series bench at two fleet sizes (default 250 and
# 1000 machines) and asserts, from the bench's own "stream" BENCH_JSON
# bookkeeping, that
#
#   1. peak RSS at the big fleet stays within RSS_BUDGET_PCT (default
#      140%) of the small fleet — 4x the machines, ~same memory;
#   2. the reorder buffer (completed machines waiting for the fold
#      cursor) never exceeded the streaming window, at either scale.
#
#   cmake -B build -S . && cmake --build build -j
#   tools/check_stream_scaling.sh build
#
# Wall clock scales with machine count (~0.4s of simulated-machine work
# each), so CI runs this as its own job; MACHINES_A/MACHINES_B override
# the fleet sizes for quick local runs.

set -u

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/fig_fleet_timeseries"
MACHINES_A="${MACHINES_A:-250}"
MACHINES_B="${MACHINES_B:-1000}"
THREADS="${THREADS:-4}"
RSS_BUDGET_PCT="${RSS_BUDGET_PCT:-140}"
# Tiny per-machine run: the fixed warmup cost dominates anyway, and the
# smoke measures memory shape, not throughput.
FLAGS="--threads=$THREADS --duration=0.6 --max-requests=50"
TMPDIR_SCALE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SCALE"' EXIT

if [ ! -x "$BENCH" ]; then
  echo "check_stream_scaling: missing bench binary $BENCH" >&2
  exit 2
fi

for n in "$MACHINES_A" "$MACHINES_B"; do
  echo "=== fig_fleet_timeseries --machines=$n"
  if ! "$BENCH" $FLAGS --machines="$n" >"$TMPDIR_SCALE/m$n.out" 2>&1; then
    echo "check_stream_scaling: --machines=$n run failed" >&2
    tail -5 "$TMPDIR_SCALE/m$n.out" >&2
    exit 1
  fi
  grep '"kind":"stream"' "$TMPDIR_SCALE/m$n.out" | head -1 \
    >"$TMPDIR_SCALE/m$n.stream"
done

python3 - "$TMPDIR_SCALE/m$MACHINES_A.stream" \
          "$TMPDIR_SCALE/m$MACHINES_B.stream" \
          "$THREADS" "$RSS_BUDGET_PCT" <<'EOF'
import json
import sys

small_path, big_path, threads, budget_pct = sys.argv[1:5]
threads, budget_pct = int(threads), int(budget_pct)
window = max(2 * threads, 2)

def load(path):
    with open(path, encoding="utf-8") as handle:
        line = handle.read().strip()
    if not line:
        sys.exit(f"check_stream_scaling: no stream line in {path}")
    return json.loads(line.removeprefix("BENCH_JSON "))

small, big = load(small_path), load(big_path)
failures = []

ratio = 100.0 * big["peak_rss_kb"] / small["peak_rss_kb"]
print(f"check_stream_scaling: peak RSS {small['peak_rss_kb']} KiB "
      f"@ {small['machines']} machines -> {big['peak_rss_kb']} KiB "
      f"@ {big['machines']} machines ({ratio:.0f}%, budget {budget_pct}%)")
if ratio > budget_pct:
    failures.append(
        f"peak RSS grew {ratio:.0f}% > {budget_pct}% budget: collector "
        "memory is scaling with the fleet")

for run in (small, big):
    pending = run["collector_peak_pending"]
    print(f"check_stream_scaling: peak reorder buffer {pending} "
          f"@ {run['machines']} machines (window {window})")
    if pending > window:
        failures.append(
            f"reorder buffer {pending} exceeded window {window} at "
            f"{run['machines']} machines")
    if run["peak_rss_kb"] <= 0:
        failures.append(
            f"no RSS reading at {run['machines']} machines "
            "(/proc/self/status unavailable?)")

for msg in failures:
    print(f"check_stream_scaling: FAIL: {msg}")
if failures:
    sys.exit(1)
print("check_stream_scaling: OK (collector memory independent of "
      "machine count)")
EOF
