#!/usr/bin/env python3
"""mallocz: render wsc-tcmalloc heap profiles and traces for humans.

Production TCMalloc exposes /mallocz and heapz handlers; this is their
offline stand-in. It reads the JSON files written by the bench binaries
(--profile=heap.json, --trace=trace.json) and prints pprof-style tables.

Usage:
  tools/mallocz.py heap.json                 # callsite tables
  tools/mallocz.py heap.json --top 10        # only the 10 largest rows
  tools/mallocz.py --trace trace.json        # Fig. 6-style tier breakdown
  tools/mallocz.py --timeseries ts.ndjson    # interval series + sketches

Heap-profile views: live heap by callsite (with attribution coverage),
peak and cumulative bytes, sampled mean lifetimes, and per-callsite
hugepage-fragmentation attribution (stranded free bytes on hugepages the
callsite pins). Trace view: event counts per tier and per event type,
plus drop counts per process, answering "which tier did the work?" like
the paper's Fig. 6 cycle breakdown. Timeseries view: the --timeseries
NDJSON sidecar rendered as a per-interval fleet table (footprint spark
line, allocation/reclaim/failure deltas) plus the merged quantile-sketch
percentiles — the offline stand-in for a GWP time-series dashboard.
"""

import argparse
import collections
import json
import sys


def human_bytes(n):
    for unit, shift in (("GiB", 30), ("MiB", 20), ("KiB", 10)):
        if n >= (1 << shift):
            return f"{n / (1 << shift):.1f} {unit}"
    return f"{n} B"


def print_table(headers, rows):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths[:-1])
    fmt += "  {}"  # last column left-aligned, unpadded
    print(fmt.format(*headers))
    for row in rows:
        print(fmt.format(*row))


def render_profile(path, top):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("kind") != "heap_profile":
        sys.exit(f"mallocz: {path} is not a heap profile "
                 "(expected kind 'heap_profile')")

    total = doc["total_live_bytes"]
    attributed = doc["attributed_live_bytes"]
    coverage = 100.0 * attributed / total if total else 100.0
    print(f"Heap profile: {human_bytes(total)} live, "
          f"{coverage:.1f}% attributed to "
          f"{len(doc['callsites'])} callsites; "
          f"{doc['samples_taken']} samples taken")

    callsites = sorted(doc["callsites"],
                       key=lambda c: (-c["live_bytes"], c["name"], c["id"]))
    if top:
        dropped = len(callsites) - top
        callsites = callsites[:top]
        if dropped > 0:
            print(f"(showing top {top} by live bytes; {dropped} more "
                  "rows omitted)")

    print("\n-- Live heap by callsite --")
    rows = []
    for c in callsites:
        share = 100.0 * c["live_bytes"] / total if total else 0.0
        lifetimes = c["sampled_lifetimes"]
        mean_ms = (c["lifetime_sum_ns"] / lifetimes / 1e6
                   if lifetimes else 0.0)
        rows.append([
            human_bytes(c["live_bytes"]), f"{share:.1f}%",
            human_bytes(c["peak_live_bytes"]), human_bytes(c["cum_bytes"]),
            str(c["allocs"]), str(c["samples"]), f"{mean_ms:.3f}",
            c["name"],
        ])
    print_table(["live", "share", "peak", "cum", "allocs", "samples",
                 "mean_life_ms", "callsite"], rows)

    frag = [c for c in callsites if c["fragmented_hugepages"] > 0]
    if frag:
        print("\n-- Hugepage fragmentation attribution --")
        frag.sort(key=lambda c: (-c["fragmented_free_bytes"], c["name"]))
        rows = [[str(c["fragmented_hugepages"]),
                 human_bytes(c["fragmented_free_bytes"]), c["name"]]
                for c in frag]
        print_table(["hugepages", "stranded_free", "callsite"], rows)

    buckets = doc.get("size_lifetime", [])
    if buckets:
        print("\n-- Size x lifetime (sampled) --")
        rows = []
        for b in buckets:
            i = b["bucket"]
            lo = 0 if i == 0 else 1 << (i - 1)
            rows.append([
                f"{human_bytes(lo)}-{human_bytes(1 << i)}",
                str(b["samples"]),
                f"{b['lifetime_sum_ns'] / b['samples'] / 1e6:.3f}",
            ])
        print_table(["size_bucket", "samples", "mean_life_ms"], rows)


def render_trace(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents", [])
    by_tier = collections.Counter()
    by_name = collections.Counter()
    drops = []
    for event in events:
        if event.get("ph") == "M":
            if event.get("name") == "thread_name":
                args = event.get("args", {})
                drops.append((event.get("pid"), event.get("tid"),
                              args.get("emitted", 0),
                              args.get("dropped", 0)))
            continue
        by_tier[event.get("cat", "?")] += 1
        by_name[(event.get("cat", "?"), event.get("name", "?"))] += 1

    total = sum(by_tier.values())
    print(f"Trace: {total} events from {len(drops)} process(es)")
    print("\n-- Events by tier (Fig. 6-style breakdown) --")
    rows = [[str(n), f"{100.0 * n / total:.1f}%" if total else "0%", tier]
            for tier, n in by_tier.most_common()]
    print_table(["events", "share", "tier"], rows)

    print("\n-- Events by type --")
    rows = [[str(n), f"{100.0 * n / total:.1f}%" if total else "0%",
             f"{tier}/{name}"]
            for (tier, name), n in by_name.most_common()]
    print_table(["events", "share", "event"], rows)

    wrapped = [(pid, tid, e, d) for pid, tid, e, d in drops if d]
    if wrapped:
        print("\n-- Ring wraparound (oldest events dropped) --")
        rows = [[f"machine{pid}/process{tid}", str(e), str(d)]
                for pid, tid, e, d in wrapped]
        print_table(["process", "emitted", "dropped"], rows)


SPARK_CHARS = " .:-=+*#%@"


def spark(value, lo, hi):
    if hi <= lo:
        return SPARK_CHARS[-1]
    frac = (value - lo) / (hi - lo)
    return SPARK_CHARS[min(len(SPARK_CHARS) - 1,
                           int(frac * (len(SPARK_CHARS) - 1)))]


def render_timeseries(path):
    intervals = collections.defaultdict(list)  # arm -> [interval obj]
    sketches = collections.defaultdict(list)   # arm -> [sketch obj]
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            obj = json.loads(line)
            arm = obj.get("arm", "")
            if obj.get("kind") == "timeseries":
                intervals[arm].append(obj)
            elif obj.get("kind") == "sketch":
                sketches[arm].append(obj)
    if not intervals:
        sys.exit(f"mallocz: {path} has no timeseries lines")

    for arm in sorted(intervals):
        label = f" [{arm}]" if arm else ""
        series = intervals[arm]
        bench = series[0].get("bench", "?")
        print(f"Time series: {bench}{label}, {len(series)} intervals, "
              f"{series[-1]['t_seconds']:.1f}s of logical time")

        heap = [s.get("gauges", {}).get("allocator/heap_bytes", 0.0)
                for s in series]
        lo, hi = min(heap), max(heap)
        print(f"\n-- Fleet footprint ({human_bytes(int(lo))} .. "
              f"{human_bytes(int(hi))}) --")
        print("  " + "".join(spark(v, lo, hi) for v in heap))

        print("\n-- Per-interval deltas --")
        rows = []
        for s in series:
            gauges = s.get("gauges", {})
            counters = s.get("counters", {})
            failures = sum(v for k, v in counters.items()
                           if k.startswith("failure/"))
            rows.append([
                f"{s['t_seconds']:.1f}",
                human_bytes(int(gauges.get("allocator/heap_bytes", 0))),
                human_bytes(int(gauges.get("allocator/live_bytes", 0))),
                str(counters.get("allocator/allocations", 0)),
                str(counters.get("allocator/frees", 0)),
                human_bytes(counters.get("pressure/reclaimed_bytes", 0)),
                str(failures),
            ])
        print_table(["t(s)", "heap", "live", "allocs", "frees",
                     "reclaimed", "failures"], rows)

        if sketches.get(arm):
            print("\n-- Distribution sketches (log-bucket, ~3% rel err) --")
            rows = []
            for s in sorted(sketches[arm], key=lambda x: x.get("name", "")):
                sk = s.get("sketch", {})
                q = sk.get("quantiles", {})
                rows.append([
                    str(sk.get("count", 0)),
                    f"{q.get('p50', 0):.0f}", f"{q.get('p90', 0):.0f}",
                    f"{q.get('p95', 0):.0f}", f"{q.get('p99', 0):.0f}",
                    f"{sk.get('max', 0):.0f}", s.get("name", "?"),
                ])
            print_table(["n", "p50", "p90", "p95", "p99", "max", "sketch"],
                        rows)
        print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profile", nargs="?", default=None,
                        help="heap-profile JSON (--profile=heap.json)")
    parser.add_argument("--trace", default=None,
                        help="Chrome-tracing JSON (--trace=trace.json)")
    parser.add_argument("--timeseries", default=None,
                        help="interval-series NDJSON "
                        "(--timeseries=timeseries.ndjson)")
    parser.add_argument("--top", type=int, default=0,
                        help="show only the N largest callsites (0 = all)")
    args = parser.parse_args()
    if args.profile is None and args.trace is None and \
            args.timeseries is None:
        parser.error("nothing to render: pass a heap profile, --trace "
                     "and/or --timeseries")
    if args.profile:
        render_profile(args.profile, args.top)
    if args.trace:
        if args.profile:
            print()
        render_trace(args.trace)
    if args.timeseries:
        if args.profile or args.trace:
            print()
        render_timeseries(args.timeseries)


if __name__ == "__main__":
    sys.exit(main())
