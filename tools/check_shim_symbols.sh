#!/usr/bin/env bash
# CI check: libwscmalloc.so must export the complete malloc interposition
# surface — a missing symbol silently falls through to glibc, which then
# tries to free wscmalloc pointers (or vice versa) and corrupts the heap
# far from the cause. Also asserts the converse: the shim's C++ internals
# stay hidden, so the only dynamic symbols the .so contributes are the
# intended malloc surface plus the wscmalloc_* introspection API.
#
#   tools/check_shim_symbols.sh build/src/shim/libwscmalloc.so

set -u

SHIM="${1:-build/src/shim/libwscmalloc.so}"
if [ ! -f "$SHIM" ]; then
  echo "check_shim_symbols: missing $SHIM (build the wscmalloc target)" >&2
  exit 1
fi

REQUIRED='malloc free calloc realloc reallocarray posix_memalign
aligned_alloc memalign valloc pvalloc malloc_usable_size
wscmalloc_is_active wscmalloc_backend wscmalloc_release_memory
wscmalloc_stats_json wscmalloc_stats_timeseries'

# Defined (non-undefined) exported dynamic symbols.
exported="$(nm -D --defined-only "$SHIM" | awk '{print $3}')"

failures=0
for sym in $REQUIRED; do
  if ! printf '%s\n' "$exported" | grep -qx "$sym"; then
    echo "check_shim_symbols: MISSING export: $sym" >&2
    failures=$((failures + 1))
  fi
done

# Leaked internals: anything exported beyond the malloc surface, the
# wscmalloc_* API, and toolchain boilerplate (_init/_fini etc.).
leaked="$(printf '%s\n' "$exported" | grep -vE '^(_|$)' | while read -r s; do
  printf '%s\n' "$REQUIRED" | tr ' ' '\n' | grep -qx "$s" || echo "$s"
done)"
if [ -n "$leaked" ]; then
  echo "check_shim_symbols: unexpected exports (hide internal symbols):" >&2
  echo "$leaked" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "check_shim_symbols: FAILED"
  exit 1
fi
count="$(printf '%s\n' "$REQUIRED" | tr ' ' '\n' | grep -c .)"
echo "check_shim_symbols: OK ($count symbols exported, no leaks)"
